package engine_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// newDB builds an engine DB and loads a workload fixture into it.
func newDB(t *testing.T, bufferPages int, load func(*workload.DB) error) *engine.DB {
	t.Helper()
	db := engine.New(bufferPages)
	if err := load(&workload.DB{Cat: db.Catalog(), Store: db.Store()}); err != nil {
		t.Fatal(err)
	}
	return db
}

func query(t *testing.T, db *engine.DB, sql string, opts engine.Options) *engine.Result {
	t.Helper()
	res, err := db.Query(sql, opts)
	if err != nil {
		t.Fatalf("Query(%v): %v", opts.Strategy, err)
	}
	return res
}

func rowSet(res *engine.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func wantRows(t *testing.T, res *engine.Result, want ...string) {
	t.Helper()
	sort.Strings(want)
	got := rowSet(res)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("%v rows = %v, want %v", res.Strategy, got, want)
	}
}

// ---- Experiment E2/E3 (sections 5.1, 5.2): the COUNT bug and its fix ----

// Nested iteration and NEST-JA2 both yield {10, 8} on Kiessling's Q2;
// Kim's NEST-JA loses part 8 (QOH = 0, no qualifying shipments) and
// returns only {10}.
func TestCountBugReproduced(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	ni := query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(10)", "(8)")

	ja2 := query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.TransformJA2})
	wantRows(t, ja2, "(10)", "(8)")
	if ja2.FellBack {
		t.Error("JA2 must not fall back on Q2")
	}

	kim := query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.TransformKim})
	wantRows(t, kim, "(10)") // the COUNT bug: part 8 is lost
}

// ---- Experiment E4 (section 5.2.1): COUNT(*) ----

func TestCountStarVariant(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	ni := query(t, db, workload.KiesslingQ2CountStar, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(10)", "(8)")
	ja2 := query(t, db, workload.KiesslingQ2CountStar, engine.Options{Strategy: engine.TransformJA2})
	wantRows(t, ja2, "(10)", "(8)")
}

// ---- Experiment E5 (section 5.3): the non-equality bug ----

// Q5 (the "<" variant): nested iteration and NEST-JA2 yield {8}; Kim's
// NEST-JA yields {10, 8} because its temp table aggregates per inner
// join-column value instead of over the range each outer tuple sees.
func TestNonEqualityBugReproduced(t *testing.T) {
	db := newDB(t, 8, workload.LoadNonEquality)
	ni := query(t, db, workload.GanskiQ5, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(8)")

	ja2 := query(t, db, workload.GanskiQ5, engine.Options{Strategy: engine.TransformJA2})
	wantRows(t, ja2, "(8)")

	kim := query(t, db, workload.GanskiQ5, engine.Options{Strategy: engine.TransformKim})
	wantRows(t, kim, "(10)", "(8)") // the paper's buggy result
}

// ---- Experiments E6/E7 (sections 5.4, 6.1): duplicates ----

// With duplicate outer join-column values, NEST-JA2's DISTINCT projection
// keeps COUNT correct: {3, 10, 8} under all correct strategies.
func TestDuplicatesHandled(t *testing.T) {
	db := newDB(t, 8, workload.LoadDuplicates)
	ni := query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(3)", "(10)", "(8)")
	ja2 := query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.TransformJA2})
	wantRows(t, ja2, "(3)", "(10)", "(8)")
}

// ---- The introduction's example queries under both strategies ----

func TestPaperExamplesAgree(t *testing.T) {
	queries := []string{
		"SELECT SNAME FROM S WHERE SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')",
		"SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
		"SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 15)",
		"SELECT SNAME FROM S WHERE SNO IS IN (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)",
		"SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)",
	}
	db := newDB(t, 8, workload.LoadSuppliers)
	for _, sql := range queries {
		ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
		ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
		// Kim's Lemma 1 equates IN with a join *as sets*: the join form
		// repeats an outer tuple once per inner match, so comparison is
		// over distinct rows (see TestNestNJDuplicationIsPaperFaithful).
		if strings.Join(dedupe(rowSet(ni)), "|") != strings.Join(dedupe(rowSet(ja2)), "|") {
			t.Errorf("%q:\n  NI:  %v\n  JA2: %v", sql, rowSet(ni), rowSet(ja2))
		}
	}
}

func dedupe(xs []string) []string {
	out := xs[:0:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// NEST-N-J inherits Kim's Lemma 1 set semantics: flattening IN into a join
// duplicates an outer tuple once per matching inner tuple. The paper fixes
// duplicate handling only inside NEST-JA2's temp table (section 5.4); for
// plain type-J queries the canonical form is a set-equivalent join. This
// test documents that inherited behavior on the paper's example 4.
func TestNestNJDuplicationIsPaperFaithful(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	sql := "SELECT SNAME FROM S WHERE SNO IS IN (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)"
	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	if len(ni.Rows) != 4 {
		t.Errorf("nested iteration rows = %d, want 4", len(ni.Rows))
	}
	if len(ja2.Rows) <= len(ni.Rows) {
		t.Errorf("expected join-induced duplicates in canonical form, got %d rows", len(ja2.Rows))
	}
	if strings.Join(dedupe(rowSet(ni)), "|") != strings.Join(dedupe(rowSet(ja2)), "|") {
		t.Errorf("distinct rows differ:\n  NI:  %v\n  JA2: %v", rowSet(ni), rowSet(ja2))
	}
}

// ---- Experiment E10 (section 8): extended predicates ----

func TestExtendedPredicatesAgree(t *testing.T) {
	queries := []string{
		"SELECT PNUM FROM PARTS WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
		"SELECT PNUM FROM PARTS WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)",
		"SELECT PNUM FROM PARTS WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
		"SELECT PNUM FROM PARTS WHERE QOH > ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
		"SELECT PNUM FROM PARTS WHERE QOH >= ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
	}
	db := newDB(t, 8, workload.LoadKiessling)
	for _, sql := range queries {
		ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
		ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
		if ja2.FellBack {
			t.Errorf("%q fell back", sql)
		}
		if strings.Join(rowSet(ni), "|") != strings.Join(rowSet(ja2), "|") {
			t.Errorf("%q:\n  NI:  %v\n  JA2: %v", sql, rowSet(ni), rowSet(ja2))
		}
	}
}

// The paper calls the ANY/ALL rewrites "logically (but not necessarily
// semantically) equivalent": over an *empty* correlated set, x > ALL S is
// TRUE under nested iteration but x > MAX(S) = NULL rejects the row after
// transformation. This test documents that known, paper-faithful
// divergence.
func TestAllOverEmptySetDivergesAsInPaper(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	sql := `SELECT PNUM FROM PARTS
	        WHERE QOH > ALL (SELECT QUAN FROM SUPPLY
	                         WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE > 1-1-99)`
	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	wantRows(t, ni, "(3)", "(10)", "(8)") // ALL over empty is TRUE
	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	wantRows(t, ja2) // MAX over empty is NULL: rows rejected
}

// ---- Fallback behavior ----

func TestFallbackForNonTransformable(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	sql := "SELECT SNAME FROM S WHERE STATUS > 100 OR SNO IN (SELECT SNO FROM SP WHERE PNO = 'P2')"
	res := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	if !res.FellBack {
		t.Error("expected fallback for a subquery under OR")
	}
	wantRows(t, res, "('Smith')", "('Jones')", "('Blake')", "('Clark')")

	if _, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true}); err == nil {
		t.Error("NoFallback must surface the transformation error")
	}
}

// NOT IN runs through the NULL-aware anti-join without falling back — the
// beyond-paper extension.
func TestNotInViaAntiJoin(t *testing.T) {
	db := newDB(t, 8, workload.LoadSuppliers)
	sql := "SELECT SNAME FROM S WHERE SNO NOT IN (SELECT SNO FROM SP WHERE PNO = 'P2')"
	res := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	if res.FellBack {
		t.Error("anti-join must not fall back")
	}
	wantRows(t, res, "('Adams')")
	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	if strings.Join(rowSet(ni), "|") != strings.Join(rowSet(res), "|") {
		t.Errorf("anti-join diverges from NI")
	}
}

// ---- Forced join methods (the section 7.4 combinations) ----

func TestForcedJoinMethodsAgreeOnResults(t *testing.T) {
	methods := []planner.JoinMethod{planner.JoinAuto, planner.JoinMerge, planner.JoinNL}
	db := newDB(t, 8, workload.LoadKiessling)
	var baseline []string
	for _, tempJoin := range methods {
		for _, finalJoin := range methods {
			res := query(t, db, workload.KiesslingQ2, engine.Options{
				Strategy: engine.TransformJA2,
				Planner:  planner.Options{TempJoin: tempJoin, FinalJoin: finalJoin},
			})
			rs := rowSet(res)
			if baseline == nil {
				baseline = rs
				continue
			}
			if strings.Join(rs, "|") != strings.Join(baseline, "|") {
				t.Errorf("temp=%v final=%v rows = %v, want %v", tempJoin, finalJoin, rs, baseline)
			}
		}
	}
	if strings.Join(baseline, " ") != "(10) (8)" {
		t.Errorf("baseline rows = %v", baseline)
	}
}

// ---- Measured I/O: the transformation beats nested iteration when the
// inner relation does not fit in the buffer pool (the regime that
// motivated Kim and the paper). ----

func TestTransformBeatsNestedIterationOnIO(t *testing.T) {
	db := engine.New(4) // tiny pool: SUPPLY cannot stay cached
	if err := db.CreateRelation(&schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt}, {Name: "QOH", Type: value.KindInt},
	}}, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation(&schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt}, {Name: "QUAN", Type: value.KindInt},
	}}, 4); err != nil {
		t.Fatal(err)
	}
	for k := range 200 {
		if err := db.Insert("PARTS", storage.Tuple{value.NewInt(int64(k)), value.NewInt(int64(k % 5))}); err != nil {
			t.Fatal(err)
		}
	}
	for k := range 400 {
		if err := db.Insert("SUPPLY", storage.Tuple{value.NewInt(int64(k % 200)), value.NewInt(int64(k % 7))}); err != nil {
			t.Fatal(err)
		}
	}
	db.Seal("PARTS")
	db.Seal("SUPPLY")

	sql := `SELECT PNUM FROM PARTS
	        WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`
	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	if strings.Join(rowSet(ni), "|") != strings.Join(rowSet(ja2), "|") {
		t.Fatalf("results differ:\n NI %v\n JA2 %v", rowSet(ni), rowSet(ja2))
	}
	if ja2.Stats.Total() >= ni.Stats.Total() {
		t.Errorf("JA2 I/O %v not below NI I/O %v", ja2.Stats, ni.Stats)
	}
	// The paper's section 4 claim: savings of 80%-95% are attainable.
	savings := 1 - float64(ja2.Stats.Total())/float64(ni.Stats.Total())
	if savings < 0.8 {
		t.Errorf("savings = %.0f%%, want >= 80%%", savings*100)
	}
	t.Logf("NI: %v; JA2: %v; savings %.1f%%", ni.Stats, ja2.Stats, savings*100)
}

// ---- Engine surface ----

func TestExplainReport(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	rep, err := db.Explain(workload.KiesslingQ2, engine.Options{Strategy: engine.TransformJA2})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"type-JA", "CREATE TEMP1", "CREATE TEMP3", "Measured cost", "Rows: 2"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("Explain output missing %q:\n%s", frag, rep)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	if _, err := db.Query("NOT SQL", engine.Options{}); err == nil {
		t.Error("parse error not surfaced")
	}
	if _, err := db.Query("SELECT X FROM NOPE", engine.Options{}); err == nil {
		t.Error("resolve error not surfaced")
	}
	if err := db.Insert("NOPE", storage.Tuple{}); err == nil {
		t.Error("insert into unknown relation")
	}
	if err := db.Insert("PARTS", storage.Tuple{value.NewInt(1)}); err == nil {
		t.Error("arity mismatch not caught")
	}
	if err := db.Seal("NOPE"); err == nil {
		t.Error("seal of unknown relation")
	}
	if err := db.CreateRelation(&schema.Relation{Name: "PARTS", Columns: []schema.Column{{Name: "X"}}}, 0); err == nil {
		t.Error("duplicate relation not caught")
	}
}

func TestStrategyStrings(t *testing.T) {
	if engine.NestedIteration.String() != "nested-iteration" {
		t.Error(engine.NestedIteration.String())
	}
	if !strings.Contains(engine.TransformJA2.String(), "JA2") {
		t.Error(engine.TransformJA2.String())
	}
	if !strings.Contains(engine.TransformKim.String(), "Kim") {
		t.Error(engine.TransformKim.String())
	}
}

// Temp tables must not leak across queries: run the same transformed
// query repeatedly and ensure catalog stays clean.
func TestTempTableCleanup(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	for range 5 {
		query(t, db, workload.KiesslingQ2, engine.Options{Strategy: engine.TransformJA2})
	}
	for _, name := range db.Catalog().Names() {
		if strings.HasPrefix(name, "TEMP") {
			t.Errorf("leaked temp relation %s", name)
		}
	}
}

// An outer alias that shadows a generated temp name still executes
// correctly end to end under NEST-JA2 (temp scopes are separate).
func TestOuterAliasShadowingTempName(t *testing.T) {
	db := newDB(t, 8, workload.LoadNonEquality)
	sql := `
		SELECT TEMP1.PNUM FROM PARTS TEMP1
		WHERE TEMP1.QOH = (SELECT MAX(QUAN) FROM SUPPLY
		                   WHERE SUPPLY.PNUM = TEMP1.PNUM)`
	ni := query(t, db, sql, engine.Options{Strategy: engine.NestedIteration})
	ja2 := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	if strings.Join(rowSet(ni), "|") != strings.Join(rowSet(ja2), "|") {
		t.Errorf("alias shadowing diverges:\n  NI:  %v\n  JA2: %v", rowSet(ni), rowSet(ja2))
	}
}
