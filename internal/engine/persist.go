package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"strings"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Database snapshots: Save serializes the catalog and every relation's
// rows (gob encoded); Restore rebuilds an equivalent database. Snapshots
// capture logical content — page layout is reconstructed on load — plus
// the buffer pool size and per-relation page capacities, so restored
// databases measure the same costs.

// imageColumn is the wire form of a column definition.
type imageColumn struct {
	Name string
	Kind uint8
}

// imageRelation is the wire form of one relation with its rows.
type imageRelation struct {
	Name          string
	Columns       []imageColumn
	Key           []string
	TuplesPerPage int
	Rows          []storage.Tuple
}

// image is the wire form of a whole database.
type image struct {
	Magic       string
	BufferPages int
	Relations   []imageRelation
}

const imageMagic = "nestedsql-snapshot-v1"

// Save writes a snapshot of the database. Reading the rows goes through
// the buffer pool and is charged like any other scan; snapshot outside
// measured query windows.
func (db *DB) Save(w io.Writer) error {
	img := image{Magic: imageMagic, BufferPages: db.store.BufferPages()}
	for _, name := range db.cat.Names() {
		if strings.Contains(name, "#") {
			// A per-query TEMPn#qN materialization: transient by
			// definition, never part of a snapshot. None should exist
			// when snapshotting under the exclusive DML lock; this is a
			// belt against an abandoned temp from a failed query.
			continue
		}
		rel, _ := db.cat.Lookup(name)
		f, ok := db.store.Lookup(rel.Name)
		if !ok {
			return fmt.Errorf("engine: relation %s has no storage", name)
		}
		ir := imageRelation{
			Name:          rel.Name,
			Key:           rel.Key,
			TuplesPerPage: f.TuplesPerPage(),
		}
		for _, c := range rel.Columns {
			ir.Columns = append(ir.Columns, imageColumn{Name: c.Name, Kind: uint8(c.Type)})
		}
		f.Scan(func(t storage.Tuple) bool {
			ir.Rows = append(ir.Rows, t.Clone())
			return true
		})
		img.Relations = append(img.Relations, ir)
	}
	return gob.NewEncoder(w).Encode(img)
}

// Restore reads a snapshot written by Save into a new database.
func Restore(r io.Reader) (*DB, error) {
	var img image
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	if img.Magic != imageMagic {
		return nil, fmt.Errorf("engine: restore: not a nestedsql snapshot")
	}
	db := New(img.BufferPages)
	if err := applyImage(db, img); err != nil {
		return nil, err
	}
	return db, nil
}

// applyImage loads a decoded snapshot into an (empty) database. WAL
// recovery reuses it to rebuild state before replaying the log tail;
// the caller is responsible for suppressing WAL logging while it runs.
func applyImage(db *DB, img image) error {
	for _, ir := range img.Relations {
		rel := &schema.Relation{Name: ir.Name, Key: ir.Key}
		for _, c := range ir.Columns {
			rel.Columns = append(rel.Columns, schema.Column{Name: c.Name, Type: value.Kind(c.Kind)})
		}
		if err := db.CreateRelation(rel, ir.TuplesPerPage); err != nil {
			return err
		}
		for _, row := range ir.Rows {
			if err := db.Insert(ir.Name, row); err != nil {
				return err
			}
		}
		if err := db.Seal(ir.Name); err != nil {
			return err
		}
	}
	return nil
}
