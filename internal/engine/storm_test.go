package engine_test

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/storage"
)

// The multi-client chaos storm: many client goroutines hammer ONE engine
// through the admission gateway while the fault injector is armed. Every
// query must end in exactly one of two ways — a result that matches the
// pre-computed nested-iteration oracle, or a typed lifecycle error
// (injected fault, timeout, cancellation, budget, overload shed, open
// circuit). The memory pool must never overcommit, and after a drain the
// engine must be back at baseline: no temp files, no in-flight storage
// operations, no goroutines.

// stormCleanErr extends cleanChaosErr with the two admission-layer
// outcomes a storm legitimately produces: a shed (full queue or drain)
// and a circuit-broken forced-parallel request.
func stormCleanErr(err error) bool {
	return cleanChaosErr(err) ||
		errors.Is(err, qctx.ErrOverloaded) ||
		errors.Is(err, qctx.ErrCircuitOpen)
}

// stormFaults is the injector configuration shared by the storm tests:
// the chaos harness's schedule, covering anonymous materialization temps
// and the transform algorithms' named (now query-suffixed) temp tables.
func stormFaults(seed int64) *storage.FaultInjector {
	return storage.NewFaultInjector(storage.FaultConfig{
		Seed:         seed,
		ReadError:    0.02,
		WriteTear:    0.2,
		TearPrefixes: []string{"$tmp", "TEMP"},
		Latency:      0.01,
		LatencyDur:   200 * time.Microsecond,
	})
}

// stormCorpus generates n random queries over the fuzz database together
// with their fault-free nested-iteration oracle answers (as sorted sets).
// The oracle runs before faults or admission are armed.
func stormCorpus(t *testing.T, db *engine.DB, rng *rand.Rand, n int) (queries, oracle []string) {
	t.Helper()
	g := &queryGen{rng: rng}
	for len(queries) < n {
		sql := g.genQuery()
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatalf("fault-free NI failed for %q: %v", sql, err)
		}
		queries = append(queries, sql)
		oracle = append(oracle, sortedSet(ni))
	}
	return queries, oracle
}

// stormOpts picks one of the execution variants a storm client rotates
// through: nested iteration, sequential transform, parallel transform
// (sometimes forced, meeting the breaker head-on), occasionally with a
// tight deadline or an oversized memory request to exercise queue
// timeouts and degraded leases.
func stormOpts(rng *rand.Rand, poolBytes int64) engine.Options {
	opts := engine.Options{Timeout: 30 * time.Second}
	switch rng.Intn(4) {
	case 0:
		opts.Strategy = engine.NestedIteration
	case 1:
		opts.Strategy = engine.TransformJA2
	default:
		opts.Strategy = engine.TransformJA2
		opts.Planner.Parallelism = 4
		opts.Planner.ForceParallel = rng.Intn(2) == 0
	}
	if rng.Intn(8) == 0 {
		// A deadline shorter than the queue wait under load: exercises
		// deadline-aware waiting and queue-timeout rejection.
		opts.Timeout = time.Duration(rng.Intn(5)+1) * time.Millisecond
	}
	if rng.Intn(4) == 0 {
		// Ask for more than a fair pool share so concurrent big askers
		// force degraded (partial) leases.
		opts.MaxBytes = poolBytes/2 + int64(rng.Intn(int(poolBytes/4)))
	}
	return opts
}

func TestChaosStorm(t *testing.T) {
	const clients = 8
	rounds := 16 // per client; 8×16 = 128 storm rounds
	if testing.Short() {
		rounds = 8
	}
	baseline := runtime.NumGoroutine()

	seed := int64(77000)
	rng := rand.New(rand.NewSource(seed))
	db := fuzzDB(t, rng)
	queries, oracle := stormCorpus(t, db, rng, 24)

	const poolBytes = 1 << 20
	ctrl := db.EnableAdmission(admission.Config{
		MaxConcurrent: 3,
		QueueDepth:    2,
		PoolBytes:     poolBytes,
		RetryMax:      2,
		RetryBase:     200 * time.Microsecond,
		RetryCap:      2 * time.Millisecond,
		Seed:          seed,
		Breaker:       admission.BreakerConfig{Threshold: 3, Cooldown: 50 * time.Millisecond},
	})
	inj := stormFaults(seed)
	db.Store().SetFaultInjector(inj)

	var okRuns, errRuns int64
	var wg sync.WaitGroup
	for c := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed + int64(c) + 1))
			for r := range rounds {
				qi := crng.Intn(len(queries))
				sql := queries[qi]
				res, err := db.Query(sql, stormOpts(crng, poolBytes))
				if err != nil {
					atomic.AddInt64(&errRuns, 1)
					if !stormCleanErr(err) {
						t.Errorf("client %d round %d: unclean error for %q: %v", c, r, sql, err)
						return
					}
					continue
				}
				atomic.AddInt64(&okRuns, 1)
				// A query that survived the storm must be correct. ALL
				// rewrites deliberately diverge from nested iteration
				// unless the run fell back to nested iteration anyway.
				if res.FellBack || !strings.Contains(sql, " ALL ") {
					if got := sortedSet(res); got != oracle[qi] {
						t.Errorf("client %d round %d: wrong result for %q:\n  got:  %s\n  want: %s",
							c, r, sql, got, oracle[qi])
						return
					}
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("storm hung\n%s", buf[:runtime.Stack(buf, true)])
	}
	if t.Failed() {
		return
	}

	st := ctrl.Stats()
	t.Logf("storm: %d ok, %d typed errors, %d faults injected; %s",
		okRuns, errRuns, inj.Injected(), st)
	if st.PoolPeak > poolBytes {
		t.Errorf("memory pool overcommitted: peak %d > pool %d", st.PoolPeak, poolBytes)
	}
	if st.Admitted == 0 || okRuns == 0 {
		t.Error("storm admitted or completed no queries; the harness exercises nothing")
	}
	if inj.Injected() == 0 {
		t.Error("no faults injected; the storm ran fault-free")
	}

	// Drain: in-flight work finishes (or is canceled), then the engine
	// must be idle with nothing leaked.
	if err := db.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain after storm: %v", err)
	}
	if n := inj.InFlight(); n != 0 {
		t.Errorf("drain left %d storage operation(s) in flight", n)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Errorf("storm leaked %d temp file(s)", n)
	}
	waitGoroutineBaseline(t, baseline, "storm")

	// The drained engine sheds new work with the typed overload error...
	if _, err := db.Query(queries[0], engine.Options{Strategy: engine.TransformJA2}); !errors.Is(err, qctx.ErrOverloaded) {
		t.Errorf("query against drained engine: got %v, want ErrOverloaded", err)
	}
	// ...and after Resume, with faults disarmed, the differential oracle
	// must still hold: the storm corrupted no base table.
	ctrl.Resume()
	db.Store().SetFaultInjector(nil)
	for qi, sql := range queries {
		res, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("post-storm rerun failed for %q: %v", sql, err)
		}
		if !strings.Contains(sql, " ALL ") {
			if got := sortedSet(res); got != oracle[qi] {
				t.Fatalf("post-storm differential mismatch for %q:\n  got:  %s\n  want: %s", sql, got, oracle[qi])
			}
		}
	}
}

// TestDrainUnderFaults drains the engine in the middle of a faulted storm:
// Drain must return within its deadline, every straggler must be canceled
// cleanly, and the injector's in-flight gauge, the temp-file count, and
// the goroutine count must all return to baseline.
func TestDrainUnderFaults(t *testing.T) {
	baseline := runtime.NumGoroutine()
	seed := int64(78000)
	rng := rand.New(rand.NewSource(seed))
	db := fuzzDB(t, rng)
	queries, _ := stormCorpus(t, db, rng, 12)

	db.EnableAdmission(admission.Config{
		MaxConcurrent: 4,
		QueueDepth:    8,
		PoolBytes:     1 << 20,
		Seed:          seed,
	})
	inj := stormFaults(seed)
	db.Store().SetFaultInjector(inj)

	var stop atomic.Bool
	var wg sync.WaitGroup
	started := make(chan struct{}, 6)
	for c := range 6 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed + int64(c) + 1))
			first := true
			for !stop.Load() {
				sql := queries[crng.Intn(len(queries))]
				opts := engine.Options{Strategy: engine.TransformJA2, Timeout: 30 * time.Second}
				if crng.Intn(2) == 0 {
					opts.Planner.Parallelism = 4
				}
				_, err := db.Query(sql, opts)
				if first {
					first = false
					started <- struct{}{}
				}
				if err != nil && !stormCleanErr(err) {
					t.Errorf("client %d: unclean error for %q: %v", c, sql, err)
					return
				}
			}
		}()
	}
	// Wait until every client has completed at least one query, then let
	// the storm run a moment longer so the drain lands mid-flight.
	for range 6 {
		<-started
	}
	time.Sleep(30 * time.Millisecond)

	if err := db.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain under faults: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	if n := inj.InFlight(); n != 0 {
		t.Errorf("drain left %d storage operation(s) in flight", n)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Errorf("drain leaked %d temp file(s)", n)
	}
	waitGoroutineBaseline(t, baseline, "drain under faults")

	// Resume: the engine is healthy again.
	db.Admission().Resume()
	db.Store().SetFaultInjector(nil)
	if _, err := db.Query(queries[0], engine.Options{Strategy: engine.TransformJA2}); err != nil {
		t.Fatalf("query after resume: %v", err)
	}
}

// TestConcurrentQueriesWithoutAdmission is the plain-concurrency
// regression test: two clients issue queries simultaneously against one
// engine with NO admission gateway. Per-query temp-table namespacing and
// the concurrent-safe catalog must keep the runs independent — under
// -race this guards the shared-state audit, not just the gateway.
func TestConcurrentQueriesWithoutAdmission(t *testing.T) {
	rng := rand.New(rand.NewSource(79000))
	db := fuzzDB(t, rng)
	queries, oracle := stormCorpus(t, db, rng, 12)

	var wg sync.WaitGroup
	for c := range 2 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The two clients walk the corpus in opposite directions, so
			// different queries (and the same query) overlap in time.
			for pass := range 3 {
				for i := range queries {
					qi := i
					if c == 1 {
						qi = len(queries) - 1 - i
					}
					sql := queries[qi]
					opts := engine.Options{Strategy: engine.TransformJA2}
					if pass == 2 {
						opts.Planner.Parallelism = 2
					}
					res, err := db.Query(sql, opts)
					if err != nil {
						t.Errorf("client %d: %q failed: %v", c, sql, err)
						return
					}
					if res.FellBack || !strings.Contains(sql, " ALL ") {
						if got := sortedSet(res); got != oracle[qi] {
							t.Errorf("client %d: wrong result for %q:\n  got:  %s\n  want: %s",
								c, sql, got, oracle[qi])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if n := db.Store().TempCount(); n != 0 {
		t.Errorf("concurrent queries leaked %d temp file(s)", n)
	}
}

// TestAdmissionRejectsExpiredDeadline checks satellite requirement (1) at
// the engine level: a query whose deadline is already gone — or expires
// while queued — is rejected with ErrQueryTimeout before any operator
// opens, so the store sees zero I/O from it.
func TestAdmissionRejectsExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(80000))
	db := fuzzDB(t, rng)
	queries, _ := stormCorpus(t, db, rng, 1)
	ctrl := db.EnableAdmission(admission.Config{MaxConcurrent: 1, QueueDepth: 4})

	// Pre-expired deadline: rejected at the gate.
	before := db.Store().Stats()
	if _, err := db.Query(queries[0], engine.Options{Timeout: -time.Nanosecond}); !errors.Is(err, qctx.ErrQueryTimeout) {
		t.Fatalf("pre-expired deadline: got %v, want ErrQueryTimeout", err)
	}
	if got := db.Store().Stats().Sub(before); got.Total() != 0 {
		t.Errorf("pre-expired query performed I/O: %v", got)
	}
	if st := ctrl.Stats(); st.Admitted != 0 {
		t.Errorf("pre-expired query was admitted: %+v", st)
	}

	// Deadline expiring IN the queue: occupy the only slot directly, so
	// the queued query's wait provably consumes its whole budget.
	slot, err := ctrl.Admit(admission.Request{})
	if err != nil {
		t.Fatal(err)
	}
	before = db.Store().Stats()
	if _, err := db.Query(queries[0], engine.Options{Timeout: 20 * time.Millisecond}); !errors.Is(err, qctx.ErrQueryTimeout) {
		t.Fatalf("queue-expired deadline: got %v, want ErrQueryTimeout", err)
	}
	if got := db.Store().Stats().Sub(before); got.Total() != 0 {
		t.Errorf("queue-expired query performed I/O: %v", got)
	}
	if st := ctrl.Stats(); st.QueueTimeouts != 1 {
		t.Errorf("QueueTimeouts = %d, want 1", st.QueueTimeouts)
	}
	slot.Release()

	// With the slot free the same query and deadline succeed.
	if _, err := db.Query(queries[0], engine.Options{Timeout: 10 * time.Second}); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
}

// waitGoroutineBaseline polls until the goroutine count returns to the
// pre-test baseline, dumping all stacks on timeout.
func waitGoroutineBaseline(t *testing.T, baseline int, label string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%s: goroutines leaked: baseline=%d now=%d\n%s",
				label, baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
