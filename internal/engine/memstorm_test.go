package engine_test

import (
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/spill"
	"repro/internal/storage"
	"repro/internal/value"
)

// The memory-pressure suite: queries run under byte budgets far below
// their working sets, and with spilling enabled they must degrade to
// disk-backed execution and return results BYTE-IDENTICAL to the
// unbudgeted sequential oracle — same rows, same order. Without
// spilling the same budgets must fail typed (ErrMemoryBudget), which
// also pins the satellite fix that sequential merge-join groups, hash
// aggregation, and temp-table materialization are charged at all.

// memStormCleanErr extends the storm's clean-error set with the two
// spill outcomes chaos legitimately produces: a corrupt run detected by
// its checksum, and an injected spill I/O fault.
func memStormCleanErr(err error) bool {
	return stormCleanErr(err) || errors.Is(err, qctx.ErrSpillCorrupt)
}

// memDB builds RA/RB/RC with enough rows that sorts and join groups
// dwarf the tiny budgets the suite runs under.
func memDB(t *testing.T, seed int64, rows int) *engine.DB {
	t.Helper()
	db := engine.New(8)
	rng := rand.New(rand.NewSource(seed))
	for _, name := range []string{"RA", "RB", "RC"} {
		rel := &schema.Relation{Name: name, Columns: []schema.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
			{Name: "W", Type: value.KindInt},
		}}
		if err := db.CreateRelation(rel, 4); err != nil {
			t.Fatal(err)
		}
		for range rows {
			row := storage.Tuple{
				value.NewInt(int64(rng.Intn(rows / 3))),
				value.NewInt(int64(rng.Intn(6))),
				value.NewInt(int64(rng.Intn(8))),
			}
			if err := db.Insert(name, row); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Seal(name); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// exactRows renders a result preserving row order — the byte-diff the
// spill contract is held to on deterministic (sequential) plans.
func exactRows(res *engine.Result) string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	return strings.Join(out, "\n")
}

// mergeJoins forces both join phases to sort-merge so every plan has
// buffering operators (sorts, merge-join groups) to squeeze.
func mergeJoins(o *engine.Options) {
	o.Planner.TempJoin = planner.JoinMerge
	o.Planner.FinalJoin = planner.JoinMerge
}

// The acceptance query: a correlated COUNT (type JA), transformed by
// NEST-JA2 into temp-table materialization, sorts, and a merge join.
const memJAQuery = `SELECT T1.K, T1.V FROM RA T1
	WHERE T1.V = (SELECT COUNT(T2.V) FROM RB T2 WHERE T2.K = T1.K)`

// TestSpillCompletesUnderSmallBudget is the PR's acceptance criterion:
// a NEST-JA2 query that fails with ErrMemoryBudget under a small budget
// completes with spilling enabled, byte-identical to the unbudgeted
// sequential run, and leaves the spill directory empty.
func TestSpillCompletesUnderSmallBudget(t *testing.T) {
	db := memDB(t, 91000, 90)
	// Above one temp-table page buffer (the irreducible working set of
	// materialization, which models disk and cannot spill) but far below
	// the ~10KB the sorts and join groups want to buffer.
	const budget = 4096

	oracleOpts := engine.Options{Strategy: engine.TransformJA2}
	mergeJoins(&oracleOpts)
	oracle, err := db.Query(memJAQuery, oracleOpts)
	if err != nil {
		t.Fatalf("unbudgeted oracle: %v", err)
	}
	if len(oracle.Rows) == 0 {
		t.Fatal("oracle returned no rows; the fixture exercises nothing")
	}

	// Seed behavior: the budget alone kills the query.
	tight := oracleOpts
	tight.MaxBytes = budget
	if _, err := db.Query(memJAQuery, tight); !errors.Is(err, qctx.ErrMemoryBudget) {
		t.Fatalf("budget %d without spill: got %v, want ErrMemoryBudget", budget, err)
	}

	// With a spill manager the same budget degrades instead of failing.
	if err := db.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(memJAQuery, tight)
	if err != nil {
		t.Fatalf("budget %d with spill: %v", budget, err)
	}
	if got, want := exactRows(res), exactRows(oracle); got != want {
		t.Fatalf("spilled result differs from oracle:\n  got:  %s\n  want: %s", got, want)
	}
	if res.Spill.Runs == 0 {
		t.Fatal("query completed under budget without writing a single spill run — no pressure exercised")
	}
	if n, err := db.SpillManager().LiveFiles(); err != nil || n != 0 {
		t.Fatalf("spill dir after query: %d live files (err %v), want 0", n, err)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Fatalf("query leaked %d temp file(s)", n)
	}
}

// TestSequentialBudgetCharged pins the satellite fix: SEQUENTIAL plans
// (merge-join group buffers, temp-table materialization, aggregation)
// must charge the memory budget. At the seed none of them called
// AddBuffered, so this query sailed under any budget.
func TestSequentialBudgetCharged(t *testing.T) {
	db := memDB(t, 92000, 90)
	opts := engine.Options{Strategy: engine.TransformJA2, MaxBytes: 512}
	mergeJoins(&opts)
	if _, err := db.Query(memJAQuery, opts); !errors.Is(err, qctx.ErrMemoryBudget) {
		t.Fatalf("sequential NEST-JA2 under 512-byte budget: got %v, want ErrMemoryBudget", err)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Fatalf("failed query leaked %d temp file(s)", n)
	}
}

// TestSpillForcedMatchesOracle pushes every buffering operator through
// spill runs with no budget at all (the policy the chaos and metamorph
// suites lean on) and still demands byte-identical output, across the
// whole fuzz corpus.
func TestSpillForcedMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(93000))
	db := fuzzDB(t, rng)
	queries, _ := stormCorpus(t, db, rng, 16)
	if err := db.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	spilled := int64(0)
	for _, sql := range queries {
		oopts := engine.Options{Strategy: engine.TransformJA2}
		mergeJoins(&oopts)
		oracle, err := db.Query(sql, oopts)
		if err != nil {
			t.Fatalf("oracle for %q: %v", sql, err)
		}
		fopts := oopts
		fopts.Spill = qctx.SpillForced
		res, err := db.Query(sql, fopts)
		if err != nil {
			t.Fatalf("forced-spill run for %q: %v", sql, err)
		}
		if got, want := exactRows(res), exactRows(oracle); got != want {
			t.Fatalf("forced-spill result differs for %q:\n  got:  %s\n  want: %s", sql, got, want)
		}
		spilled += res.Spill.Runs
	}
	if spilled == 0 {
		t.Fatal("no query wrote a spill run under SpillForced")
	}
	if n, _ := db.SpillManager().LiveFiles(); n != 0 {
		t.Fatalf("spill dir not empty after corpus: %d files", n)
	}
}

// TestSpillCorruptRunDetected: a corrupted spill run must surface as a
// typed error — never wrong rows — and must leave the spill directory
// empty afterwards.
func TestSpillCorruptRunDetected(t *testing.T) {
	db := memDB(t, 94000, 90)
	if err := db.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	db.SpillManager().SetFaultInjector(spill.NewFaultInjector(spill.FaultConfig{Seed: 9, Corrupt: 1}))
	opts := engine.Options{Strategy: engine.TransformJA2, MaxBytes: 4096}
	mergeJoins(&opts)
	res, err := db.Query(memJAQuery, opts)
	if err == nil {
		t.Fatalf("query over all-corrupt spill runs succeeded with %d rows", len(res.Rows))
	}
	if !errors.Is(err, qctx.ErrSpillCorrupt) {
		t.Fatalf("corrupt run error = %v, want ErrSpillCorrupt", err)
	}
	if n, _ := db.SpillManager().LiveFiles(); n != 0 {
		t.Fatalf("failed query left %d spill file(s) behind", n)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Fatalf("failed query leaked %d temp file(s)", n)
	}

	// A transient (retryable) corruption: under admission the engine
	// re-runs the query and the retry, fault now spent, succeeds.
	db.SpillManager().SetFaultInjector(spill.NewFaultInjector(spill.FaultConfig{Seed: 9, Corrupt: 1, MaxFaults: 1}))
	db.EnableAdmission(admission.Config{RetryMax: 3, RetryBase: time.Millisecond})
	if _, err := db.Query(memJAQuery, opts); err != nil {
		t.Fatalf("retryable corruption not recovered: %v", err)
	}
	if n, _ := db.SpillManager().LiveFiles(); n != 0 {
		t.Fatalf("recovered query left spill files behind")
	}
}

// TestSpillTimeoutLeakFree hammers the cancel/timeout path: queries
// forced through spill runs are killed by tiny deadlines at random
// points, and every attempt must leave zero spill files, zero temp
// files, and no goroutines.
func TestSpillTimeoutLeakFree(t *testing.T) {
	baseline := runtime.NumGoroutine()
	db := memDB(t, 95000, 90)
	if err := db.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(95001))
	for round := range 40 {
		opts := engine.Options{
			Strategy: engine.TransformJA2,
			Spill:    qctx.SpillForced,
			Timeout:  time.Duration(rng.Intn(900)+50) * time.Microsecond,
		}
		mergeJoins(&opts)
		if rng.Intn(2) == 0 {
			opts.Planner.Parallelism = 4
		}
		_, err := db.Query(memJAQuery, opts)
		if err != nil && !memStormCleanErr(err) {
			t.Fatalf("round %d: unclean error: %v", round, err)
		}
		if n, _ := db.SpillManager().LiveFiles(); n != 0 {
			t.Fatalf("round %d: %d spill file(s) leaked", round, n)
		}
		if n := db.Store().TempCount(); n != 0 {
			t.Fatalf("round %d: %d temp file(s) leaked", round, n)
		}
	}
	waitGoroutineBaseline(t, baseline, "spill timeouts")
}

// TestMemPressureStorm is the tentpole chaos gate: concurrent clients
// run the corpus under budgets far below their working sets, through
// the admission gateway (whose pool is small enough to hand out
// pressure leases), with spill I/O faults armed. Every query must end
// as either a result matching its oracle — byte-identical for
// sequential plans — or a typed error; afterwards the engine must be
// back at baseline with zero spill or temp files.
func TestMemPressureStorm(t *testing.T) {
	const clients = 6
	rounds := 16
	if testing.Short() {
		rounds = 6
	}
	baseline := runtime.NumGoroutine()

	seed := int64(96000)
	db := memDB(t, seed, 120)

	// Fixed query mix: JA transforms, grouping, ordering, joins — all
	// shapes with buffering operators.
	queries := []string{
		memJAQuery,
		`SELECT T1.K, T1.V FROM RA T1 WHERE T1.V >= (SELECT COUNT(T2.V) FROM RB T2 WHERE T2.K = T1.K)`,
		`SELECT T1.K, T1.W FROM RB T1 WHERE T1.W > (SELECT MAX(T2.V) FROM RC T2 WHERE T2.K = T1.K)`,
		`SELECT T1.K, T1.V FROM RC T1 WHERE T1.V IN (SELECT T2.V FROM RA T2 WHERE T2.K = T1.K)`,
		`SELECT T1.K, T1.V FROM RA T1 WHERE EXISTS (SELECT T2.V FROM RB T2 WHERE T2.K = T1.K AND T2.V < T1.V)`,
	}
	oracle := make([]string, len(queries))
	oracleBag := make([]string, len(queries))
	for i, sql := range queries {
		opts := engine.Options{Strategy: engine.TransformJA2}
		mergeJoins(&opts)
		res, err := db.Query(sql, opts)
		if err != nil {
			t.Fatalf("oracle for %q: %v", sql, err)
		}
		oracle[i] = exactRows(res)
		oracleBag[i] = sortedRows(res)
	}

	if err := db.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	// A pool well under clients × working set: grants are routinely
	// degraded or pressure-sized (below MinLease), and every lease is
	// small enough to force spilling, but the common lease stays above
	// the irreducible temp-page buffer so most queries can complete.
	const poolBytes = 24 << 10
	ctrl := db.EnableAdmission(admission.Config{
		MaxConcurrent: 4,
		QueueDepth:    4,
		PoolBytes:     poolBytes,
		DefaultLease:  6 << 10,
		MinLease:      4 << 10,
		RetryMax:      2,
		RetryBase:     200 * time.Microsecond,
		RetryCap:      2 * time.Millisecond,
		Seed:          seed,
	})
	// Fault probabilities are per record appended/read, and a squeezed
	// query moves hundreds of records through spill runs — these rates
	// give roughly one fault every couple of queries.
	inj := spill.NewFaultInjector(spill.FaultConfig{
		Seed:       seed,
		WriteError: 0.0003,
		ReadError:  0.0003,
		Corrupt:    0.0002,
	})
	db.SpillManager().SetFaultInjector(inj)

	var okRuns, errRuns int64
	var wg sync.WaitGroup
	for c := range clients {
		wg.Add(1)
		go func() {
			defer wg.Done()
			crng := rand.New(rand.NewSource(seed + int64(c) + 1))
			for r := range rounds {
				qi := crng.Intn(len(queries))
				opts := engine.Options{
					Strategy: engine.TransformJA2,
					Timeout:  30 * time.Second,
					// From "below even one temp-page buffer" (a clean
					// typed failure) up to "most of a sort's working
					// set" (spills, then completes).
					MaxBytes: int64(crng.Intn(10<<10) + 1536),
				}
				mergeJoins(&opts)
				parallel := crng.Intn(3) == 0
				if parallel {
					opts.Planner.Parallelism = 4
				}
				if crng.Intn(4) == 0 {
					opts.Spill = qctx.SpillForced
				}
				res, err := db.Query(queries[qi], opts)
				if err != nil {
					atomic.AddInt64(&errRuns, 1)
					if !memStormCleanErr(err) {
						t.Errorf("client %d round %d: unclean error for %q: %v", c, r, queries[qi], err)
						return
					}
					continue
				}
				atomic.AddInt64(&okRuns, 1)
				if parallel {
					// Parallel output interleaves: bag equality.
					if got := sortedRows(res); got != oracleBag[qi] {
						t.Errorf("client %d round %d: parallel bag mismatch for %q", c, r, queries[qi])
						return
					}
				} else if got := exactRows(res); got != oracle[qi] {
					// Sequential spilled plans are deterministic: the
					// degraded run must be byte-identical to the oracle.
					t.Errorf("client %d round %d: byte diff vs oracle for %q:\n  got:  %s\n  want: %s",
						c, r, queries[qi], got, oracle[qi])
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("memory-pressure storm hung\n%s", buf[:runtime.Stack(buf, true)])
	}
	if t.Failed() {
		return
	}

	st := ctrl.Stats()
	sp := db.SpillStats()
	t.Logf("mem storm: %d ok, %d typed errors; %s; %d spill faults injected; admission %d pressure grants",
		okRuns, errRuns, sp, inj.Injected(), st.PressureGrants)
	if okRuns == 0 {
		t.Error("no query survived the storm; the harness exercises nothing")
	}
	if sp.Runs == 0 {
		t.Error("storm wrote no spill runs; budgets exerted no pressure")
	}
	if inj.Injected() == 0 {
		t.Error("spill fault injector never fired; the storm exercises no spill I/O faults")
	}
	if st.PoolPeak > poolBytes {
		t.Errorf("memory pool overcommitted: peak %d > pool %d", st.PoolPeak, poolBytes)
	}

	if err := db.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain after storm: %v", err)
	}
	if n, _ := db.SpillManager().LiveFiles(); n != 0 {
		t.Errorf("storm leaked %d spill file(s)", n)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Errorf("storm leaked %d temp file(s)", n)
	}
	waitGoroutineBaseline(t, baseline, "mem storm")

	// Faults disarmed, admission resumed: the base tables are intact.
	ctrl.Resume()
	db.SpillManager().SetFaultInjector(nil)
	for i, sql := range queries {
		opts := engine.Options{Strategy: engine.TransformJA2, MaxBytes: 8192}
		mergeJoins(&opts)
		res, err := db.Query(sql, opts)
		if err != nil {
			t.Fatalf("post-storm rerun failed for %q: %v", sql, err)
		}
		if got := exactRows(res); got != oracle[i] {
			t.Fatalf("post-storm differential mismatch for %q", sql)
		}
	}
}

// TestPressureGrantsUnderSpill: with spilling enabled, a pool too empty
// for even MinLease hands out what it has (a pressure grant) instead of
// queuing — and the query completes by spilling against the tiny lease.
func TestPressureGrantsUnderSpill(t *testing.T) {
	db := memDB(t, 97000, 90)
	if err := db.EnableSpill(t.TempDir(), 0); err != nil {
		t.Fatal(err)
	}
	const pool = 1 << 20
	ctrl := db.EnableAdmission(admission.Config{
		MaxConcurrent: 8,
		PoolBytes:     pool,
		MinLease:      1 << 19,
	})
	// Occupy almost the whole pool, leaving free < MinLease.
	big, err := ctrl.Admit(admission.Request{MemBytes: pool - 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Release()

	opts := engine.Options{Strategy: engine.TransformJA2, Timeout: 30 * time.Second}
	mergeJoins(&opts)
	res, err := db.Query(memJAQuery, opts)
	if err != nil {
		t.Fatalf("query under pool pressure: %v", err)
	}
	if res.Spill.Runs == 0 {
		t.Error("pressure-leased query never spilled; the tiny lease exerted no pressure")
	}
	if st := ctrl.Stats(); st.PressureGrants != 1 {
		t.Errorf("PressureGrants = %d, want 1", st.PressureGrants)
	}
}
