package engine_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/storage"
)

// Streaming tests: a sunk query must deliver exactly the rows the
// materialized path produces, in the same order for deterministic plans,
// with the column header exactly once — and a sink error must abort the
// query, never retry it behind the client's back.

// collectSink gathers everything a RowSink sees.
type collectSink struct {
	colCalls int
	cols     []string
	batches  int
	rows     []storage.Tuple
	failAt   int   // fail when this many rows have been collected (0 = never)
	err      error // the error to fail with
}

func (c *collectSink) sink(batchRows int) *engine.RowSink {
	return &engine.RowSink{
		BatchRows: batchRows,
		Columns: func(cols []string) error {
			c.colCalls++
			c.cols = append([]string(nil), cols...)
			return nil
		},
		Batch: func(rows []storage.Tuple) error {
			c.batches++
			for _, r := range rows {
				c.rows = append(c.rows, append(storage.Tuple(nil), r...))
			}
			if c.failAt > 0 && len(c.rows) >= c.failAt {
				return c.err
			}
			return nil
		},
	}
}

func TestStreamMatchesMaterialized(t *testing.T) {
	for _, strat := range bothStrategies {
		for _, batch := range []int{1, 7, 0} {
			db := lifecycleDB(t)
			want, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			c := &collectSink{}
			res, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat, Sink: c.sink(batch)})
			if err != nil {
				t.Fatalf("%v batch=%d: %v", strat, batch, err)
			}
			if res.Rows != nil {
				t.Errorf("%v: streamed result still materialized %d rows", strat, len(res.Rows))
			}
			if c.colCalls != 1 || !reflect.DeepEqual(c.cols, want.Columns) {
				t.Errorf("%v: columns sent %d times as %v, want once as %v", strat, c.colCalls, c.cols, want.Columns)
			}
			if !reflect.DeepEqual(c.rows, want.Rows) {
				t.Errorf("%v batch=%d: streamed %d rows != materialized %d rows",
					strat, batch, len(c.rows), len(want.Rows))
			}
			if batch == 1 && c.batches != len(want.Rows) {
				t.Errorf("%v: %d batches at size 1 for %d rows", strat, c.batches, len(want.Rows))
			}
		}
	}
}

func TestStreamEmptyResultSendsColumns(t *testing.T) {
	db := lifecycleDB(t)
	c := &collectSink{}
	_, err := db.Query("SELECT T1.K FROM RA T1 WHERE T1.V = 999", engine.Options{
		Strategy: engine.TransformJA2, Sink: c.sink(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.colCalls != 1 || len(c.rows) != 0 {
		t.Errorf("empty result: %d column calls, %d rows", c.colCalls, len(c.rows))
	}
}

func TestStreamSinkErrorAbortsQuery(t *testing.T) {
	db := lifecycleDB(t)
	boom := errors.New("client went away")
	c := &collectSink{failAt: 1, err: boom}
	_, err := db.Query(lifecycleQuery, engine.Options{Strategy: engine.TransformJA2, Sink: c.sink(1)})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	if n := db.Store().TempCount(); n != 0 {
		t.Errorf("aborted stream leaked %d temp file(s)", n)
	}
}

func TestStreamRejectsVerifyParallel(t *testing.T) {
	db := lifecycleDB(t)
	c := &collectSink{}
	_, err := db.Query(lifecycleQuery, engine.Options{
		Strategy: engine.TransformJA2, VerifyParallel: true, Sink: c.sink(0),
	})
	if err == nil || c.colCalls != 0 {
		t.Fatalf("VerifyParallel+Sink must fail before streaming; err=%v colCalls=%d", err, c.colCalls)
	}
}

// TestStreamRowBudgetStillEnforced pins that the streamed pull loop
// charges the row budget exactly like the materialized drain.
func TestStreamRowBudgetStillEnforced(t *testing.T) {
	for _, strat := range bothStrategies {
		db := lifecycleDB(t)
		c := &collectSink{}
		_, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat, MaxRows: 5, Sink: c.sink(2)})
		if !errors.Is(err, qctx.ErrRowBudget) {
			t.Errorf("%v: err = %v, want ErrRowBudget", strat, err)
		}
	}
}

// TestStreamNoRetryAfterEmission pins the retry fence: a transient fault
// that strikes after rows have been delivered must fail the query, not
// silently re-run it (the client would receive duplicates). The sink
// error stands in for the fault — the fence is the same hasEmitted gate.
func TestStreamNoRetryAfterEmission(t *testing.T) {
	db := lifecycleDB(t)
	db.EnableAdmission(admission.Config{RetryMax: 3, RetryBase: time.Millisecond, Seed: 1})
	boom := fmt.Errorf("mid-stream: %w", storage.ErrInjectedFault)
	c := &collectSink{failAt: 3, err: boom}
	_, err := db.Query(lifecycleQuery, engine.Options{Strategy: engine.TransformJA2, Sink: c.sink(1)})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the mid-stream fault", err)
	}
	if c.colCalls != 1 {
		t.Errorf("columns sent %d times; a retry leaked through the fence", c.colCalls)
	}
	if len(c.rows) != 3 {
		t.Errorf("sink saw %d rows, want exactly 3 (no duplicate delivery)", len(c.rows))
	}
}

// TestStreamNoRetryAfterSinkFailure pins the other half of the fence: a
// sink that fails on the very FIRST batch leaves hasEmitted false (the
// failed batch is not counted), yet retrying would be wasted work — the
// consumer's write path is broken, and a re-run would stream into the
// same dead pipe. The sinkBroken gate must stop the transient-fault
// retry even when the sink's error looks retryable.
func TestStreamNoRetryAfterSinkFailure(t *testing.T) {
	db := lifecycleDB(t)
	db.EnableAdmission(admission.Config{RetryMax: 3, RetryBase: time.Millisecond, Seed: 1})
	boom := fmt.Errorf("first write failed: %w", storage.ErrInjectedFault)
	c := &collectSink{failAt: 1, err: boom}
	_, err := db.Query(lifecycleQuery, engine.Options{Strategy: engine.TransformJA2, Sink: c.sink(1)})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink failure", err)
	}
	if c.batches != 1 {
		t.Errorf("sink saw %d batch calls; a retry leaked through the sink-failure fence", c.batches)
	}
	if c.colCalls != 1 {
		t.Errorf("columns sent %d times, want exactly once", c.colCalls)
	}
}
