package engine_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/storage"
)

// The chaos harness: the grammar fuzzer's query corpus executed against a
// seeded fault-injecting store (read errors, latency, torn temp-table
// writes during materialization). Every injected fault must surface as a
// clean, typed error — never a process panic, a hang, a leaked goroutine,
// or a leaked temp file — and once faults are disarmed the same database
// must still satisfy the transformed-vs-nested differential oracle.
//
// Each round is fully determined by its seed: the database content, the
// query text, and the fault schedule all replay identically, so a failure
// report's round number reproduces the failure.

// cleanChaosErr reports whether an error from a faulted run is one the
// lifecycle layer is allowed to produce: the injected fault itself
// (possibly wrapped in a contained PanicError), or a lifecycle error from
// a deadline racing the injected latency.
func cleanChaosErr(err error) bool {
	return errors.Is(err, storage.ErrInjectedFault) ||
		errors.Is(err, qctx.ErrQueryTimeout) ||
		errors.Is(err, qctx.ErrCanceled) ||
		errors.Is(err, qctx.ErrBudgetExceeded)
}

// chaosRun executes one query with a watchdog: a hang is a test failure,
// not a silent CI timeout.
func chaosRun(t *testing.T, db *engine.DB, sql string, opts engine.Options, round int, label string) (*engine.Result, error) {
	t.Helper()
	type outcome struct {
		res *engine.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := db.Query(sql, opts)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return o.res, o.err
	case <-time.After(60 * time.Second):
		t.Fatalf("round %d (%s): query hung: %q", round, label, sql)
		return nil, nil
	}
}

// genDML builds a random INSERT, UPDATE, or DELETE against table,
// sometimes correlating the WHERE clause through a subquery so the
// decision phase reads other (fault-injected) tables too.
func genDML(rng *rand.Rand, table string) string {
	where := func() string {
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf(" WHERE K = %d", rng.Intn(5))
		case 1:
			return fmt.Sprintf(" WHERE V > %d AND W < %d", rng.Intn(4), rng.Intn(6))
		default:
			other := []string{"RA", "RB", "RC"}[rng.Intn(3)]
			return fmt.Sprintf(" WHERE K IN (SELECT K FROM %s WHERE %s.V > %d)",
				other, other, rng.Intn(4))
		}
	}
	switch rng.Intn(3) {
	case 0:
		return fmt.Sprintf("INSERT INTO %s VALUES (%d, %d, %d), (%d, %d, %d)",
			table, rng.Intn(5), rng.Intn(4), rng.Intn(6),
			rng.Intn(5), rng.Intn(4), rng.Intn(6))
	case 1:
		return fmt.Sprintf("UPDATE %s SET V = %d%s", table, rng.Intn(4), where())
	default:
		return fmt.Sprintf("DELETE FROM %s%s", table, where())
	}
}

// tableRows reads a base table's contents in heap order. Call with the
// fault injector disarmed.
func tableRows(db *engine.DB, table string) []string {
	f, _ := db.Store().Lookup(table)
	var out []string
	f.Scan(func(t storage.Tuple) bool {
		out = append(out, t.String())
		return true
	})
	return out
}

// cloneFuzzDB copies the three fuzz tables into a fresh, fault-free
// database to serve as the DML oracle.
func cloneFuzzDB(t *testing.T, src *engine.DB) *engine.DB {
	t.Helper()
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := engine.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func equalRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestChaosFaultInjection(t *testing.T) {
	rounds := 250
	if testing.Short() {
		rounds = 40
	}
	baseline := runtime.NumGoroutine()
	var injectedTotal, faultedErrs, faultedOKs int64
	for i := range rounds {
		seed := int64(9000 + i)
		rng := rand.New(rand.NewSource(seed))
		db := fuzzDB(t, rng)
		g := &queryGen{rng: rng}
		sql := g.genQuery()

		// Fault-free ground truth first, so a chaos round with a clean
		// outcome can be checked for correctness too.
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatalf("round %d: fault-free NI failed for %q: %v", i, sql, err)
		}

		// Arm the injector. Torn writes cover both the anonymous sort/
		// materialization temps ($tmpN) and the transform algorithms'
		// named temp tables (TEMPn).
		inj := storage.NewFaultInjector(storage.FaultConfig{
			Seed:         seed,
			ReadError:    0.03,
			WriteTear:    0.3,
			TearPrefixes: []string{"$tmp", "TEMP"},
			Latency:      0.01,
			LatencyDur:   200 * time.Microsecond,
		})
		db.Store().SetFaultInjector(inj)

		// Faulted runs: nested iteration, sequential transform, parallel
		// transform — every execution path meets the same fault schedule.
		faultedOpts := []engine.Options{
			{Strategy: engine.NestedIteration, Timeout: 30 * time.Second},
			{Strategy: engine.TransformJA2, Timeout: 30 * time.Second},
		}
		par := engine.Options{Strategy: engine.TransformJA2, Timeout: 30 * time.Second}
		par.Planner.Parallelism = 4
		par.Planner.ForceParallel = true
		faultedOpts = append(faultedOpts, par)
		for _, opts := range faultedOpts {
			res, err := chaosRun(t, db, sql, opts, i, "faulted "+opts.Strategy.String())
			if err != nil {
				faultedErrs++
				if !cleanChaosErr(err) {
					t.Fatalf("round %d: unclean error from faulted %v for %q: %v",
						i, opts.Strategy, sql, err)
				}
			} else {
				faultedOKs++
				// A run that absorbed its faults (retry, or none landed on
				// its pages) must still be correct. ALL-quantifier rewrites
				// deliberately diverge from nested iteration (see README)
				// unless the query fell back to nested iteration anyway.
				if res.FellBack || !strings.Contains(sql, " ALL ") {
					if got, want := sortedSet(res), sortedSet(ni); got != want {
						t.Fatalf("round %d: faulted-but-successful %v wrong for %q:\n  got:  %s\n  want: %s",
							i, opts.Strategy, sql, got, want)
					}
				}
			}
			// No run — failed or not — may leak an anonymous temp file.
			if n := db.Store().TempCount(); n != 0 {
				t.Fatalf("round %d: %v leaked %d temp file(s) for %q", i, opts.Strategy, n, sql)
			}
		}
		injectedTotal += inj.Injected()

		// Disarm and re-verify the differential oracle: injected faults
		// must not have corrupted any base table.
		db.Store().SetFaultInjector(nil)
		tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("round %d: fault-free rerun failed for %q: %v", i, sql, err)
		}
		if !strings.Contains(sql, " ALL ") {
			if got, want := sortedSet(tr), sortedSet(ni); got != want {
				t.Fatalf("round %d: post-chaos differential mismatch for %q:\n  got:  %s\n  want: %s",
					i, sql, got, want)
			}
		}

		// DML round: a randomized statement against the same fault
		// schedule, with base-table tears armed too and a cancellable
		// SELECT racing it. Whatever the outcome — success, injected
		// fault, cancellation — the target table must afterwards equal
		// either its pre-DML contents (atomic failure) or the fault-free
		// oracle's outcome (success), never something in between, and no
		// temp file (including the DML shadow) may leak.
		table := []string{"RA", "RB", "RC"}[rng.Intn(3)]
		dml := genDML(rng, table)
		pre := tableRows(db, table)
		oracle := cloneFuzzDB(t, db)
		oracleRes, oracleErr := oracle.Exec(dml, engine.Options{})
		if oracleErr != nil {
			t.Fatalf("round %d: fault-free oracle DML failed for %q: %v", i, dml, oracleErr)
		}
		dmlInj := storage.NewFaultInjector(storage.FaultConfig{
			Seed:         seed + 1,
			ReadError:    0.05,
			WriteTear:    0.3,
			TearPrefixes: []string{"$tmp", "TEMP", "R"},
			Latency:      0.01,
			LatencyDur:   200 * time.Microsecond,
		})
		db.Store().SetFaultInjector(dmlInj)
		cancel := make(chan struct{})
		selDone := make(chan error, 1)
		go func() {
			_, err := db.Query(sql, engine.Options{
				Strategy: engine.TransformJA2, Timeout: 30 * time.Second, Cancel: cancel,
			})
			selDone <- err
		}()
		time.AfterFunc(time.Duration(rng.Intn(300))*time.Microsecond, func() { close(cancel) })
		res, dmlErr := db.Exec(dml, engine.Options{Timeout: 30 * time.Second})
		if err := <-selDone; err != nil && !cleanChaosErr(err) {
			t.Fatalf("round %d: unclean error from canceled SELECT during DML: %v", i, err)
		}
		db.Store().SetFaultInjector(nil)
		injectedTotal += dmlInj.Injected()
		if n := db.Store().TempCount(); n != 0 {
			t.Fatalf("round %d: DML %q leaked %d temp file(s)", i, dml, n)
		}
		got := tableRows(db, table)
		if dmlErr != nil {
			faultedErrs++
			if !cleanChaosErr(dmlErr) {
				t.Fatalf("round %d: unclean error from faulted DML %q: %v", i, dml, dmlErr)
			}
			if !equalRows(got, pre) {
				t.Fatalf("round %d: failed DML %q left a partial apply:\n  pre:  %v\n  post: %v",
					i, dml, pre, got)
			}
		} else {
			faultedOKs++
			if want := tableRows(oracle, table); !equalRows(got, want) {
				t.Fatalf("round %d: DML %q diverged from fault-free oracle:\n  got:  %v\n  want: %v",
					i, dml, got, want)
			}
			if res.Affected != oracleRes.Affected {
				t.Fatalf("round %d: DML %q affected %d rows, oracle affected %d",
					i, dml, res.Affected, oracleRes.Affected)
			}
		}
	}

	// Goroutine accounting: everything spawned by 3×rounds faulted runs
	// (workers, distributors, cancel watchers) must have exited.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked across chaos rounds: baseline=%d now=%d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	t.Logf("chaos: %d rounds, %d faults injected, %d faulted runs errored cleanly, %d absorbed their faults",
		rounds, injectedTotal, faultedErrs, faultedOKs)
	if injectedTotal < int64(rounds)/2 {
		t.Errorf("only %d faults injected over %d rounds; the harness exercises too little", injectedTotal, rounds)
	}
	if faultedErrs == 0 {
		t.Error("no faulted run errored; fault probabilities are too low to test containment")
	}
}
