package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/value"
	"repro/internal/wal"
)

// Crash-safe durability. With EnableDurability the engine follows the
// commit discipline documented in internal/wal: every DML operation is
// applied in memory under the exclusive DML lock, appended to the log,
// and acknowledged only after Commit.Wait says it is durable. Queries
// hold the lock shared, so readers never observe a half-applied
// statement and the log order equals the apply order — which is what
// makes logical replay (re-running DELETE/UPDATE statements over the
// snapshot state) deterministic.
//
// If an append fails the log is poisoned: the in-memory state is ahead
// of the log, so every later DML is refused with wal.ErrBroken until
// Checkpoint re-establishes the invariant by snapshotting the exact
// live state and retiring all segments.

// RecoveryInfo reports what EnableDurability reconstructed on boot.
type RecoveryInfo struct {
	Enabled          bool
	SnapshotLoaded   bool
	ReplayedRecords  int
	TruncatedBytes   int64 // torn/corrupt WAL tail discarded
	DroppedSegments  int
	DroppedSnapshots int
}

// Recovered reports whether any prior state was found.
func (r RecoveryInfo) Recovered() bool { return r.SnapshotLoaded || r.ReplayedRecords > 0 }

func (r RecoveryInfo) String() string {
	if !r.Enabled {
		return "durability disabled"
	}
	s := "fresh data directory"
	if r.Recovered() {
		s = fmt.Sprintf("recovered: snapshot=%v, %d record(s) replayed", r.SnapshotLoaded, r.ReplayedRecords)
	}
	if r.TruncatedBytes > 0 || r.DroppedSegments > 0 || r.DroppedSnapshots > 0 {
		s += fmt.Sprintf(" (truncated %d tail byte(s), dropped %d segment(s), %d snapshot(s))",
			r.TruncatedBytes, r.DroppedSegments, r.DroppedSnapshots)
	}
	return s
}

// EnableDurability opens (creating if needed) the write-ahead log under
// dir and recovers any prior state into the database: the newest valid
// snapshot is loaded, then the WAL tail is replayed record by record.
// Call it on an empty database, before loading fixtures and before
// serving traffic. After it returns, every CreateRelation/Insert and
// every Exec DML statement is logged and acknowledged only once
// durable.
func (db *DB) EnableDurability(dir string, opts wal.Options) (RecoveryInfo, error) {
	if db.wal != nil {
		return db.recovery, fmt.Errorf("engine: durability already enabled")
	}
	if len(db.cat.Names()) > 0 {
		return RecoveryInfo{}, fmt.Errorf("engine: EnableDurability requires an empty database")
	}
	l, rec, err := wal.Open(dir, opts)
	if err != nil {
		return RecoveryInfo{}, err
	}
	info := RecoveryInfo{
		Enabled:          true,
		TruncatedBytes:   rec.TruncatedBytes,
		DroppedSegments:  rec.DroppedSegments,
		DroppedSnapshots: rec.DroppedSnaps,
	}
	// db.wal is still nil here, so the apply paths below run without
	// logging — recovery must not re-log what the WAL already holds.
	if rec.SnapshotPayload != nil {
		var img image
		if err := gob.NewDecoder(bytes.NewReader(rec.SnapshotPayload)).Decode(&img); err != nil {
			l.Close()
			return info, fmt.Errorf("engine: recovery snapshot: %w", err)
		}
		if img.Magic != imageMagic {
			l.Close()
			return info, fmt.Errorf("engine: recovery snapshot: not a nestedsql image")
		}
		if err := applyImage(db, img); err != nil {
			l.Close()
			return info, fmt.Errorf("engine: recovery snapshot: %w", err)
		}
		info.SnapshotLoaded = true
	}
	for _, r := range rec.Records {
		if err := contain(func() error { return db.applyRecord(r) }); err != nil {
			l.Close()
			return info, fmt.Errorf("engine: replay LSN %d (%s): %w", r.LSN, r.Type, err)
		}
		info.ReplayedRecords++
	}
	db.wal = l
	db.recovery = info
	return info, nil
}

// applyRecord re-executes one recovered commit record. Records apply in
// LSN order over the snapshot state, exactly the order the original
// operations held the DML lock in, so the logical DELETE/UPDATE replay
// sees the same prior state the original statement saw.
func (db *DB) applyRecord(r wal.Record) error {
	switch r.Type {
	case wal.RecCreateTable:
		rel := &schema.Relation{Name: r.Schema.Name, Key: r.Schema.Key}
		for _, c := range r.Schema.Columns {
			rel.Columns = append(rel.Columns, schema.Column{Name: c.Name, Type: value.Kind(c.Kind)})
		}
		return db.CreateRelation(rel, r.Schema.TuplesPerPage)
	case wal.RecInsert:
		if err := db.Insert(r.Table, r.Rows...); err != nil {
			return err
		}
		return db.Seal(r.Table)
	case wal.RecDelete:
		stmt, err := sqlparser.ParseStatement(r.SQL)
		if err != nil {
			return err
		}
		del, ok := stmt.(*sqlparser.DeleteStmt)
		if !ok {
			return fmt.Errorf("engine: delete record holds %T", stmt)
		}
		_, err = db.execDelete(del)
		return err
	case wal.RecUpdate:
		stmt, err := sqlparser.ParseStatement(r.SQL)
		if err != nil {
			return err
		}
		upd, ok := stmt.(*sqlparser.UpdateStmt)
		if !ok {
			return fmt.Errorf("engine: update record holds %T", stmt)
		}
		_, err = db.execUpdate(upd)
		return err
	case wal.RecDrop:
		return db.DropRelation(r.Table)
	default:
		return fmt.Errorf("engine: unknown WAL record type %v", r.Type)
	}
}

// Checkpoint writes an atomic snapshot of the database and retires the
// log (see wal.Log.Checkpoint). It takes the exclusive DML lock, so it
// waits out in-flight queries and DML and blocks new ones while the
// image is written. A no-op without durability.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return nil
	}
	db.dmlMu.Lock()
	defer db.dmlMu.Unlock()
	return db.wal.Checkpoint(func(w io.Writer) error { return db.Save(w) })
}

// WAL exposes the log (nil without EnableDurability) — for stats
// surfaces and for tests arming the fault injector.
func (db *DB) WAL() *wal.Log { return db.wal }

// WALStats snapshots log activity; ok is false without durability.
func (db *DB) WALStats() (wal.Stats, bool) {
	if db.wal == nil {
		return wal.Stats{}, false
	}
	return db.wal.Stats(), true
}

// RecoveryInfo reports what the last EnableDurability reconstructed.
func (db *DB) RecoveryInfo() RecoveryInfo { return db.recovery }
