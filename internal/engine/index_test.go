package engine_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// bigDB loads a relation large enough that an index scan beats a full
// scan for a selective predicate.
func bigDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New(8)
	if err := db.CreateRelation(&schema.Relation{Name: "R", Columns: []schema.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindInt},
	}}, 5); err != nil {
		t.Fatal(err)
	}
	for k := range 500 {
		if err := db.Insert("R", storage.Tuple{
			value.NewInt(int64(k % 100)),
			value.NewInt(int64(k)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Seal("R"); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestIndexScanUsedAndCheaper(t *testing.T) {
	sql := "SELECT K, V FROM R WHERE K = 7 ORDER BY V"
	db := bigDB(t)
	noIdx := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})

	if err := db.CreateIndex("R", "K"); err != nil {
		t.Fatal(err)
	}
	withIdx := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
	if sortedRows(noIdx) != sortedRows(withIdx) {
		t.Fatalf("results differ:\n  %v\n  %v", sortedRows(noIdx), sortedRows(withIdx))
	}
	if len(withIdx.Rows) != 5 {
		t.Errorf("rows = %d, want 5", len(withIdx.Rows))
	}
	if !strings.Contains(strings.Join(withIdx.Trace, "\n"), "index scan on R.K") {
		t.Errorf("index scan not chosen:\n%v", withIdx.Trace)
	}
	if withIdx.Stats.Total() >= noIdx.Stats.Total() {
		t.Errorf("index scan I/O %v not below seq scan %v", withIdx.Stats, noIdx.Stats)
	}
}

func TestIndexNotUsedForUnselectivePredicate(t *testing.T) {
	db := bigDB(t)
	if err := db.CreateIndex("R", "K"); err != nil {
		t.Fatal(err)
	}
	// K >= 0 matches everything: a full scan is cheaper.
	res := query(t, db, "SELECT K FROM R WHERE K >= 0", engine.Options{Strategy: engine.TransformJA2})
	if strings.Contains(strings.Join(res.Trace, "\n"), "index scan") {
		t.Errorf("index scan chosen for an unselective predicate:\n%v", res.Trace)
	}
	if len(res.Rows) != 500 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}

func TestIndexInvalidatedByInsert(t *testing.T) {
	db := bigDB(t)
	if err := db.CreateIndex("R", "K"); err != nil {
		t.Fatal(err)
	}
	if db.Indexes().On("R", "K") == nil {
		t.Fatal("index missing")
	}
	if err := db.Insert("R", storage.Tuple{value.NewInt(7), value.NewInt(999)}); err != nil {
		t.Fatal(err)
	}
	if db.Indexes().On("R", "K") != nil {
		t.Error("index survived an insert")
	}
	if err := db.Seal("R"); err != nil {
		t.Fatal(err)
	}
	// Correctness after invalidation: the new row appears.
	res := query(t, db, "SELECT V FROM R WHERE K = 7 ORDER BY V DESC", engine.Options{})
	if res.Rows[0][0].Int() != 999 {
		t.Errorf("first row = %v", res.Rows[0])
	}
}

func TestCreateIndexErrors(t *testing.T) {
	db := bigDB(t)
	if err := db.CreateIndex("NOPE", "K"); err == nil {
		t.Error("unknown relation")
	}
	if err := db.CreateIndex("R", "NOPE"); err == nil {
		t.Error("unknown column")
	}
	if err := db.CreateIndex("R", "K"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("R", "K"); err == nil {
		t.Error("duplicate index")
	}
}

// Differential: nested queries with indexes enabled still agree with
// nested iteration across random instances (the access path must not
// change semantics).
func TestDifferentialWithIndexes(t *testing.T) {
	sql := `
		SELECT PNUM, QOH FROM PARTS
		WHERE QOH > 0 AND
		      QOH = (SELECT COUNT(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SDAY < 7)`
	for seed := range 8 {
		rng := rand.New(rand.NewSource(int64(6000 + seed)))
		db := randomInstance(t, rng, 6)
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("PARTS", "QOH"); err != nil {
			t.Fatal(err)
		}
		if err := db.CreateIndex("SUPPLY", "SDAY"); err != nil {
			t.Fatal(err)
		}
		tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		if sortedRows(tr) != sortedRows(ni) {
			t.Errorf("seed %d: indexes changed results:\n  NI: %v\n  TR: %v",
				seed, sortedRows(ni), sortedRows(tr))
		}
	}
}
