package engine_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// Differential testing: on randomized PARTS/SUPPLY-shaped instances, the
// transformed evaluation must agree with nested iteration (the semantic
// ground truth) for every combination of aggregate function, correlated
// comparison operator, and scalar operator the algorithms cover.
//
// NEST-JA2 is duplicate-exact (each outer tuple matches at most one temp
// group), so type-JA comparisons are over bags. Type-N/J comparisons are
// over sets (Kim's Lemma 1 semantics, see README).

// randomInstance loads randomized PARTS (with duplicate join values and
// zero QOH rows, the COUNT bug triggers) and SUPPLY relations.
func randomInstance(t *testing.T, rng *rand.Rand, bufferPages int) *engine.DB {
	t.Helper()
	db := engine.New(bufferPages)
	load := func(rel *schema.Relation, rows []storage.Tuple) {
		if err := db.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(rel.Name, rows...); err != nil {
			t.Fatal(err)
		}
		if err := db.Seal(rel.Name); err != nil {
			t.Fatal(err)
		}
	}
	nParts := rng.Intn(12) + 1
	parts := make([]storage.Tuple, nParts)
	for i := range parts {
		parts[i] = storage.Tuple{
			value.NewInt(int64(rng.Intn(6))), // PNUM: small domain -> duplicates
			value.NewInt(int64(rng.Intn(4))), // QOH: small -> hits COUNT values
		}
	}
	nSupply := rng.Intn(15)
	supply := make([]storage.Tuple, nSupply)
	for i := range supply {
		supply[i] = storage.Tuple{
			value.NewInt(int64(rng.Intn(6))),  // PNUM
			value.NewInt(int64(rng.Intn(5))),  // QUAN
			value.NewInt(int64(rng.Intn(10))), // SDAY: stands in for SHIPDATE
		}
	}
	load(&schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QOH", Type: value.KindInt},
	}}, parts)
	load(&schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QUAN", Type: value.KindInt},
		{Name: "SDAY", Type: value.KindInt},
	}}, supply)
	return db
}

func sortedRows(res *engine.Result) string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

func sortedSet(res *engine.Result) string {
	seen := map[string]bool{}
	var out []string
	for _, r := range res.Rows {
		s := r.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

// TestDifferentialTypeJA sweeps aggregate × correlated operator × scalar
// operator over many random instances.
func TestDifferentialTypeJA(t *testing.T) {
	aggs := []string{"COUNT(QUAN)", "COUNT(*)", "MAX(QUAN)", "MIN(QUAN)", "SUM(QUAN)", "AVG(QUAN)"}
	joinOps := []string{"=", "<", ">", "<=", ">="}
	scalarOps := []string{"=", "<", ">="}
	rng := rand.New(rand.NewSource(42))
	const instances = 8
	for seed := range instances {
		dbRNG := rand.New(rand.NewSource(int64(seed)))
		for _, agg := range aggs {
			for _, jop := range joinOps {
				for _, sop := range scalarOps {
					sql := fmt.Sprintf(`
						SELECT PNUM, QOH FROM PARTS
						WHERE QOH %s (SELECT %s FROM SUPPLY
						              WHERE SUPPLY.PNUM %s PARTS.PNUM AND SDAY < 7)`,
						sop, agg, jop)
					db := randomInstance(t, dbRNG, 8)
					ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
					if err != nil {
						t.Fatalf("NI %q: %v", sql, err)
					}
					ja2, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
					if err != nil {
						t.Fatalf("JA2 %q: %v", sql, err)
					}
					if got, want := sortedRows(ja2), sortedRows(ni); got != want {
						t.Fatalf("seed=%d agg=%s jop=%s sop=%s:\n  sql: %s\n  NI:  %v\n  JA2: %v",
							seed, agg, jop, sop, sql, want, got)
					}
					_ = rng
				}
			}
		}
	}
}

// TestDifferentialTypeJAAllJoinMethods re-runs a COUNT query under every
// forced join combination on random instances.
func TestDifferentialTypeJAAllJoinMethods(t *testing.T) {
	sql := `
		SELECT PNUM, QOH FROM PARTS
		WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SDAY < 7)`
	for seed := range 10 {
		rng := rand.New(rand.NewSource(int64(100 + seed)))
		db := randomInstance(t, rng, 4)
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatal(err)
		}
		want := sortedRows(ni)
		for tj := 0; tj < 3; tj++ {
			for fj := 0; fj < 3; fj++ {
				opts := engine.Options{Strategy: engine.TransformJA2, NoFallback: true}
				opts.Planner.TempJoin = plannerMethod(tj)
				opts.Planner.FinalJoin = plannerMethod(fj)
				res, err := db.Query(sql, opts)
				if err != nil {
					t.Fatal(err)
				}
				if got := sortedRows(res); got != want {
					t.Fatalf("seed=%d temp=%d final=%d:\n  NI:  %v\n  got: %v", seed, tj, fj, want, got)
				}
			}
		}
	}
}

// TestDifferentialTypeNJ compares type-N and type-J queries as sets.
func TestDifferentialTypeNJ(t *testing.T) {
	queries := []string{
		// type-N: uncorrelated membership.
		`SELECT PNUM, QOH FROM PARTS WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE SDAY < 7)`,
		// type-J: correlated membership.
		`SELECT PNUM, QOH FROM PARTS
		 WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		// type-J with a non-equality correlated predicate.
		`SELECT PNUM, QOH FROM PARTS
		 WHERE QOH IN (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM < PARTS.PNUM)`,
		// scalar type-N (equality against a single-column block).
		`SELECT PNUM, QOH FROM PARTS WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SDAY < 5)`,
	}
	for seed := range 12 {
		rng := rand.New(rand.NewSource(int64(500 + seed)))
		db := randomInstance(t, rng, 8)
		for _, sql := range queries {
			ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
			if err != nil {
				t.Fatal(err)
			}
			ja2, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedSet(ja2), sortedSet(ni); got != want {
				t.Fatalf("seed=%d %q:\n  NI:  %v\n  JA2: %v", seed, sql, want, got)
			}
		}
	}
}

// TestDifferentialExists compares EXISTS/NOT EXISTS (bag-exact: the
// rewrite goes through NEST-JA2, which joins each outer row to exactly one
// temp group).
func TestDifferentialExists(t *testing.T) {
	queries := []string{
		`SELECT PNUM, QOH FROM PARTS
		 WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SDAY < 6)`,
		`SELECT PNUM, QOH FROM PARTS
		 WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND SDAY < 6)`,
	}
	for seed := range 12 {
		rng := rand.New(rand.NewSource(int64(900 + seed)))
		db := randomInstance(t, rng, 8)
		for _, sql := range queries {
			ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
			if err != nil {
				t.Fatal(err)
			}
			ja2, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedRows(ja2), sortedRows(ni); got != want {
				t.Fatalf("seed=%d %q:\n  NI:  %v\n  JA2: %v", seed, sql, want, got)
			}
		}
	}
}

// Section 5.2's note: a type-JA query with COUNT *and* a non-equality
// correlated operator needs the scalar operator inside the outer join.
// Hand-checked on the section 5.3 instance: only part 3 (QOH = 0, no
// smaller part numbers) qualifies.
func TestCountWithNonEqualityOperator(t *testing.T) {
	db := engine.New(8)
	w := &workload.DB{Cat: db.Catalog(), Store: db.Store()}
	if err := workload.LoadNonEquality(w); err != nil {
		t.Fatal(err)
	}
	sql := `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM < PARTS.PNUM AND SHIPDATE < 1-1-80)`
	ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
	if err != nil {
		t.Fatal(err)
	}
	ja2, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(ni); got != "(3)" {
		t.Errorf("NI = %v, want (3)", got)
	}
	if got, want := sortedRows(ja2), sortedRows(ni); got != want {
		t.Errorf("JA2 = %v, want %v", got, want)
	}
}

func plannerMethod(i int) planner.JoinMethod {
	switch i {
	case 1:
		return planner.JoinMerge
	case 2:
		return planner.JoinNL
	default:
		return planner.JoinAuto
	}
}

// Kim's NEST-JA is *correct* for non-COUNT aggregates with equality
// correlation (the paper: "For aggregate functions other than COUNT Kim's
// algorithm NEST-JA works correctly for nested join predicates containing
// the equality operator") — empty groups vanish from the temp table, but
// nested iteration rejects those outer rows anyway because AGG({}) is
// NULL. This differential pins our Kim implementation to that boundary.
func TestDifferentialKimCorrectCases(t *testing.T) {
	aggs := []string{"MAX(QUAN)", "MIN(QUAN)", "SUM(QUAN)", "AVG(QUAN)"}
	for seed := range 10 {
		rng := rand.New(rand.NewSource(int64(3000 + seed)))
		db := randomInstance(t, rng, 8)
		for _, agg := range aggs {
			sql := fmt.Sprintf(`
				SELECT PNUM, QOH FROM PARTS
				WHERE QOH = (SELECT %s FROM SUPPLY
				             WHERE SUPPLY.PNUM = PARTS.PNUM AND SDAY < 7)`, agg)
			ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
			if err != nil {
				t.Fatal(err)
			}
			kim, err := db.Query(sql, engine.Options{Strategy: engine.TransformKim, NoFallback: true})
			if err != nil {
				t.Fatal(err)
			}
			if got, want := sortedRows(kim), sortedRows(ni); got != want {
				t.Fatalf("seed=%d agg=%s: Kim should be correct here:\n  NI:  %v\n  Kim: %v",
					seed, agg, want, got)
			}
		}
	}
}

// And the converse boundary: with COUNT, Kim diverges from nested
// iteration on at least some instances (the COUNT bug is not an artifact
// of the fixed example). We assert divergence appears somewhere across
// the seeds, and that NEST-JA2 never diverges.
func TestDifferentialKimCountBugAppears(t *testing.T) {
	sql := `
		SELECT PNUM, QOH FROM PARTS
		WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM AND SDAY < 7)`
	diverged := false
	for seed := range 20 {
		rng := rand.New(rand.NewSource(int64(4000 + seed)))
		db := randomInstance(t, rng, 8)
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatal(err)
		}
		kim, err := db.Query(sql, engine.Options{Strategy: engine.TransformKim, NoFallback: true})
		if err != nil {
			t.Fatal(err)
		}
		if sortedRows(kim) != sortedRows(ni) {
			diverged = true
		}
	}
	if !diverged {
		t.Error("the COUNT bug never manifested across 20 random instances; generator too tame?")
	}
}
