package engine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// A grammar-based fuzzer: random nested queries of random shape and depth
// over three integer relations, executed under nested iteration (ground
// truth) and under the transformation strategy (with fallback allowed).
// Results are compared as sets — the NEST-N-J join form is set-equivalent
// (Kim's Lemma 1) — and queries the transformer rejects must still return
// correct rows via the fallback path.

// fuzzDB loads three small relations RA/RB/RC(K, V, W).
func fuzzDB(t *testing.T, rng *rand.Rand) *engine.DB {
	t.Helper()
	db := engine.New(6)
	for _, name := range []string{"RA", "RB", "RC"} {
		rel := &schema.Relation{Name: name, Columns: []schema.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
			{Name: "W", Type: value.KindInt},
		}}
		if err := db.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(10) + 1
		for range n {
			row := storage.Tuple{
				value.NewInt(int64(rng.Intn(5))),
				value.NewInt(int64(rng.Intn(4))),
				value.NewInt(int64(rng.Intn(6))),
			}
			if err := db.Insert(name, row); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Seal(name); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// queryGen builds random query text.
type queryGen struct {
	rng     *rand.Rand
	nextVar int
}

var fuzzTables = []string{"RA", "RB", "RC"}
var fuzzCols = []string{"K", "V", "W"}
var fuzzOps = []string{"=", "<", ">", "<=", ">=", "!="}
var fuzzAggs = []string{"COUNT(%s.V)", "COUNT(*)", "MAX(%s.V)", "MIN(%s.V)", "SUM(%s.V)"}

func (g *queryGen) binding() string {
	g.nextVar++
	return fmt.Sprintf("T%d", g.nextVar)
}

func (g *queryGen) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// genQuery builds the outermost query.
func (g *queryGen) genQuery() string {
	b := g.binding()
	table := g.pick(fuzzTables)
	where := g.genWhere(b, nil, 3)
	sql := fmt.Sprintf("SELECT %s.K, %s.V FROM %s %s", b, b, table, b)
	if where != "" {
		sql += " WHERE " + where
	}
	return sql
}

// genWhere builds 1-2 conjuncts, at most one of them nested.
func (g *queryGen) genWhere(binding string, outer []string, depth int) string {
	var conjs []string
	if g.rng.Intn(4) > 0 {
		conjs = append(conjs, g.genSimple(binding, outer))
	}
	if depth > 0 && g.rng.Intn(4) > 0 {
		conjs = append(conjs, g.genNested(binding, outer, depth))
	}
	return strings.Join(conjs, " AND ")
}

// genSimple builds a simple comparison; with outer bindings available it
// may produce a correlated join predicate.
func (g *queryGen) genSimple(binding string, outer []string) string {
	left := binding + "." + g.pick(fuzzCols)
	op := g.pick(fuzzOps)
	if len(outer) > 0 && g.rng.Intn(2) == 0 {
		return fmt.Sprintf("%s %s %s.%s", left, op, outer[g.rng.Intn(len(outer))], g.pick(fuzzCols))
	}
	return fmt.Sprintf("%s %s %d", left, op, g.rng.Intn(5))
}

// genNested builds a nested predicate of random kind.
func (g *queryGen) genNested(binding string, outer []string, depth int) string {
	inner := g.binding()
	table := g.pick(fuzzTables)
	visible := append(append([]string{}, outer...), binding)
	where := g.genWhere(inner, visible, depth-1)
	whereClause := ""
	if where != "" {
		whereClause = " WHERE " + where
	}
	switch g.rng.Intn(6) {
	case 0: // IN
		return fmt.Sprintf("%s.V IN (SELECT %s.V FROM %s %s%s)",
			binding, inner, table, inner, whereClause)
	case 5: // NOT IN (the anti-join extension)
		return fmt.Sprintf("%s.V NOT IN (SELECT %s.V FROM %s %s%s)",
			binding, inner, table, inner, whereClause)
	case 1: // EXISTS / NOT EXISTS
		neg := ""
		if g.rng.Intn(2) == 0 {
			neg = "NOT "
		}
		return fmt.Sprintf("%sEXISTS (SELECT %s.K FROM %s %s%s)",
			neg, inner, table, inner, whereClause)
	case 2: // quantified
		quant := "ANY"
		if g.rng.Intn(2) == 0 {
			quant = "ALL"
		}
		return fmt.Sprintf("%s.V %s %s (SELECT %s.V FROM %s %s%s)",
			binding, g.pick([]string{"<", ">", "<=", ">="}), quant, inner, table, inner, whereClause)
	default: // scalar aggregate
		agg := g.pick(fuzzAggs)
		if strings.Contains(agg, "%s") {
			agg = fmt.Sprintf(agg, inner)
		}
		return fmt.Sprintf("%s.V %s (SELECT %s FROM %s %s%s)",
			binding, g.pick([]string{"=", "<", ">"}), agg, table, inner, whereClause)
	}
}

func TestFuzzNestedQueriesAgree(t *testing.T) {
	const rounds = 500
	skipped := 0
	for i := range rounds {
		rng := rand.New(rand.NewSource(int64(7000 + i)))
		db := fuzzDB(t, rng)
		g := &queryGen{rng: rng}
		sql := g.genQuery()

		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatalf("round %d: NI failed for %q: %v", i, sql, err)
		}
		tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("round %d: transform failed for %q: %v", i, sql, err)
		}
		if tr.FellBack {
			skipped++
		}
		// The paper's ANY/ALL rewrites are only "logically" equivalent:
		// over an empty set, ALL diverges by design (see README). Compare
		// strictly only for queries without ALL.
		if strings.Contains(sql, " ALL ") && !tr.FellBack {
			continue
		}
		if got, want := sortedSet(tr), sortedSet(ni); got != want {
			t.Fatalf("round %d: %q\n  NI:  %v\n  got: %v (fellback=%v)",
				i, sql, want, got, tr.FellBack)
		}
	}
	t.Logf("%d/%d rounds fell back to nested iteration", skipped, rounds)
	if skipped == rounds {
		t.Error("every query fell back; generator exercises nothing")
	}
}

// Regression for a bug the fuzzer found: merging an uncorrelated IN
// predicate (NEST-N-J) *inside* a COUNT block duplicated the counted rows
// via join multiplicity. The transformer must refuse the merge and fall
// back unless the merged column is a declared key.
func TestRegressionCountOverMergedIn(t *testing.T) {
	db := engine.New(8)
	rel := func(name string) *schema.Relation {
		return &schema.Relation{Name: name, Columns: []schema.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
		}}
	}
	for _, name := range []string{"RA", "RC"} {
		if err := db.CreateRelation(rel(name), 4); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Insert("RA", storage.Tuple{value.NewInt(4), value.NewInt(3)}))
	// Two RC rows share V = 2: the IN-merge join would double-count.
	must(db.Insert("RC",
		storage.Tuple{value.NewInt(1), value.NewInt(2)},
		storage.Tuple{value.NewInt(0), value.NewInt(2)},
		storage.Tuple{value.NewInt(1), value.NewInt(2)},
	))
	must(db.Seal("RA"))
	must(db.Seal("RC"))

	sql := `
		SELECT K, V FROM RA
		WHERE V > (SELECT COUNT(*) FROM RC T2
		           WHERE T2.K = 1 AND T2.V IN (SELECT T3.V FROM RC T3 WHERE T3.K < 2))`
	ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.FellBack {
		t.Error("expected fallback for IN under COUNT without a key")
	}
	if sortedRows(tr) != sortedRows(ni) {
		t.Errorf("results diverge:\n  NI: %v\n  TR: %v", sortedRows(ni), sortedRows(tr))
	}
	// Sanity: COUNT counts the T2 rows whose V is in the set {2} — both
	// K=1 rows — so the predicate is 3 > 2 and the row qualifies.
	if sortedRows(ni) != "(4, 3)" {
		t.Errorf("ground truth = %v", sortedRows(ni))
	}
}

// With a declared key on the merged column the merge is multiplicity-safe
// and still happens.
func TestCountOverMergedInWithKeyStillTransforms(t *testing.T) {
	db := engine.New(8)
	if err := db.CreateRelation(&schema.Relation{Name: "RA", Columns: []schema.Column{
		{Name: "K", Type: value.KindInt}, {Name: "V", Type: value.KindInt},
	}}, 4); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateRelation(&schema.Relation{Name: "DIM", Columns: []schema.Column{
		{Name: "ID", Type: value.KindInt}, {Name: "W", Type: value.KindInt},
	}, Key: []string{"ID"}}, 4); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.Insert("RA",
		storage.Tuple{value.NewInt(1), value.NewInt(1)},
		storage.Tuple{value.NewInt(1), value.NewInt(3)},
		storage.Tuple{value.NewInt(2), value.NewInt(0)},
	))
	must(db.Insert("DIM",
		storage.Tuple{value.NewInt(1), value.NewInt(5)},
		storage.Tuple{value.NewInt(2), value.NewInt(0)},
	))
	must(db.Seal("RA"))
	must(db.Seal("DIM"))

	// The correlated COUNT block contains an uncorrelated IN over DIM.ID,
	// the declared key: merging cannot change multiplicity.
	sql := `
		SELECT K, V FROM RA
		WHERE V = (SELECT COUNT(T2.V) FROM RA T2
		           WHERE T2.K = RA.K AND T2.K IN (SELECT ID FROM DIM WHERE W > 1))`
	ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	if sortedRows(tr) != sortedRows(ni) {
		t.Errorf("results diverge:\n  NI: %v\n  TR: %v", sortedRows(ni), sortedRows(tr))
	}
}

// A larger soak: bigger relations, more rounds. Skipped under -short.
func TestFuzzSoakLargeInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for i := range 60 {
		rng := rand.New(rand.NewSource(int64(9000 + i)))
		db := engine.New(8)
		for _, name := range fuzzTables {
			rel := &schema.Relation{Name: name, Columns: []schema.Column{
				{Name: "K", Type: value.KindInt},
				{Name: "V", Type: value.KindInt},
				{Name: "W", Type: value.KindInt},
			}}
			if err := db.CreateRelation(rel, 4); err != nil {
				t.Fatal(err)
			}
			n := rng.Intn(200) + 50
			for range n {
				if err := db.Insert(name, storage.Tuple{
					value.NewInt(int64(rng.Intn(20))),
					value.NewInt(int64(rng.Intn(8))),
					value.NewInt(int64(rng.Intn(10))),
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Seal(name); err != nil {
				t.Fatal(err)
			}
		}
		g := &queryGen{rng: rng}
		sql := g.genQuery()
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatalf("round %d: NI %q: %v", i, sql, err)
		}
		tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("round %d: TR %q: %v", i, sql, err)
		}
		if strings.Contains(sql, " ALL ") && !tr.FellBack {
			continue
		}
		if got, want := sortedSet(tr), sortedSet(ni); got != want {
			t.Fatalf("round %d: %q diverged", i, sql)
		}
	}
}

// The anti-join's three-valued semantics, differentially tested against
// nested iteration on instances with NULLs on both sides of NOT IN:
// a NULL membership value poisons non-matching rows (UNKNOWN), a NULL
// operand qualifies only against an empty relevant set.
func TestDifferentialNotInWithNulls(t *testing.T) {
	queries := []string{
		// Uncorrelated NOT IN.
		`SELECT K, V FROM RA WHERE V NOT IN (SELECT W FROM RC T2 WHERE T2.K < 3)`,
		// Correlated NOT IN.
		`SELECT K, V FROM RA
		 WHERE V NOT IN (SELECT W FROM RC T2 WHERE T2.K = RA.K)`,
		// NOT IN with a guaranteed-empty inner set: everything qualifies.
		`SELECT K, V FROM RA WHERE V NOT IN (SELECT W FROM RC T2 WHERE T2.K > 100)`,
	}
	for seed := range 15 {
		rng := rand.New(rand.NewSource(int64(11000 + seed)))
		db := engine.New(8)
		for _, name := range []string{"RA", "RC"} {
			rel := &schema.Relation{Name: name, Columns: []schema.Column{
				{Name: "K", Type: value.KindInt},
				{Name: "V", Type: value.KindInt},
				{Name: "W", Type: value.KindInt},
			}}
			if err := db.CreateRelation(rel, 2); err != nil {
				t.Fatal(err)
			}
			n := rng.Intn(12) + 1
			for range n {
				mk := func() value.Value {
					if rng.Intn(4) == 0 {
						return value.Null
					}
					return value.NewInt(int64(rng.Intn(5)))
				}
				if err := db.Insert(name, storage.Tuple{mk(), mk(), mk()}); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.Seal(name); err != nil {
				t.Fatal(err)
			}
		}
		for _, sql := range queries {
			ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
			if err != nil {
				t.Fatal(err)
			}
			if tr.FellBack {
				t.Fatalf("seed %d: %q fell back", seed, sql)
			}
			// Anti-joins are bag-exact: they filter the outer stream.
			if got, want := sortedRows(tr), sortedRows(ni); got != want {
				t.Fatalf("seed %d: %q\n  NI: %v\n  TR: %v", seed, sql, want, got)
			}
		}
	}
}
