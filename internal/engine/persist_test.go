package engine_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/workload"
)

func TestSaveRestoreRoundTrip(t *testing.T) {
	db := newDB(t, 8, workload.LoadKiessling)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := engine.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same buffer pool size.
	if restored.Store().BufferPages() != 8 {
		t.Errorf("buffer pages = %d", restored.Store().BufferPages())
	}
	// Same query results, including NULL/date round-trips.
	for _, sql := range []string{
		workload.KiesslingQ2,
		"SELECT PNUM, QUAN, SHIPDATE FROM SUPPLY ORDER BY PNUM, QUAN",
	} {
		a := query(t, db, sql, engine.Options{Strategy: engine.TransformJA2})
		b := query(t, restored, sql, engine.Options{Strategy: engine.TransformJA2})
		if sortedRows(a) != sortedRows(b) {
			t.Errorf("%q: restored results differ:\n  %v\n  %v", sql, sortedRows(a), sortedRows(b))
		}
	}
	// Same page shapes (cost measurements reproduce).
	orig, _ := db.Store().Lookup("SUPPLY")
	rest, _ := restored.Store().Lookup("SUPPLY")
	if orig.NumPages() != rest.NumPages() || orig.NumTuples() != rest.NumTuples() {
		t.Errorf("SUPPLY shape: %d/%d pages, %d/%d tuples",
			orig.NumPages(), rest.NumPages(), orig.NumTuples(), rest.NumTuples())
	}
	// Keys survive.
	db2 := newDB(t, 8, workload.LoadSuppliers)
	buf.Reset()
	if err := db2.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored2, err := engine.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := restored2.Catalog().Lookup("S")
	if !s.IsKey("SNO") {
		t.Error("key lost in round trip")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := engine.Restore(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	buf.WriteString("\x00\x01\x02")
	if _, err := engine.Restore(&buf); err == nil {
		t.Error("binary garbage accepted")
	}
}

func TestSaveRestoreWithNullsAndFloats(t *testing.T) {
	db := engine.New(4)
	if _, err := db.Exec(`
		CREATE TABLE T (A INT, B FLOAT, C VARCHAR(10), D DATE);
		INSERT INTO T VALUES (1, 2.5, 'x', 7-3-79), (NULL, NULL, NULL, NULL);
	`, engine.Options{}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := engine.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := query(t, db, "SELECT A, B, C, D FROM T", engine.Options{})
	b := query(t, restored, "SELECT A, B, C, D FROM T", engine.Options{})
	if sortedRows(a) != sortedRows(b) {
		t.Errorf("round trip:\n  %v\n  %v", sortedRows(a), sortedRows(b))
	}
}
