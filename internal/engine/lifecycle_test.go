package engine_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Lifecycle tests: deadline, cancellation, and resource budgets must
// surface as their typed errors from both execution paths, and a failed
// parallel plan must degrade to a sequential retry exactly once.

// lifecycleDB loads two deterministic relations sized so joins and sorts
// do real work: RA(K,V) with 60 rows, RB(K,V) with 40.
func lifecycleDB(t *testing.T) *engine.DB {
	t.Helper()
	db := engine.New(6)
	for _, spec := range []struct {
		name string
		n    int
	}{{"RA", 60}, {"RB", 40}} {
		rel := &schema.Relation{Name: spec.name, Columns: []schema.Column{
			{Name: "K", Type: value.KindInt},
			{Name: "V", Type: value.KindInt},
		}}
		if err := db.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		for i := range spec.n {
			row := storage.Tuple{value.NewInt(int64(i % 7)), value.NewInt(int64(i % 5))}
			if err := db.Insert(spec.name, row); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Seal(spec.name); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

const lifecycleQuery = "SELECT T1.K, T1.V FROM RA T1 WHERE T1.V IN (SELECT T2.V FROM RB T2)"

var bothStrategies = []engine.Strategy{engine.NestedIteration, engine.TransformJA2}

func TestTimeoutReturnsTypedError(t *testing.T) {
	for _, strat := range bothStrategies {
		db := lifecycleDB(t)
		// Injected latency (no hard faults) makes every page read slow, so
		// the 30ms deadline trips mid-execution on both paths.
		db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
			Seed: 1, Latency: 1.0, LatencyDur: 5 * time.Millisecond,
		}))
		_, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat, Timeout: 30 * time.Millisecond})
		if !errors.Is(err, qctx.ErrQueryTimeout) {
			t.Errorf("%v: err = %v, want ErrQueryTimeout", strat, err)
		}
	}
}

func TestRowBudgetReturnsTypedError(t *testing.T) {
	for _, strat := range bothStrategies {
		db := lifecycleDB(t)
		// The query returns 60 rows; a budget of 5 must trip.
		_, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat, MaxRows: 5})
		if !errors.Is(err, qctx.ErrRowBudget) || !errors.Is(err, qctx.ErrBudgetExceeded) {
			t.Errorf("%v: err = %v, want ErrRowBudget", strat, err)
		}
		// A budget the result fits under must not trip. The transformed
		// path may produce duplicate rows (the NEST-N-J join form is only
		// set-equivalent), so the bound is generous.
		res, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat, MaxRows: 1 << 20})
		if err != nil {
			t.Errorf("%v: within budget: %v", strat, err)
		} else if len(res.Rows) < 60 {
			t.Errorf("%v: got %d rows, want >= 60", strat, len(res.Rows))
		}
	}
}

func TestMemoryBudgetReturnsTypedError(t *testing.T) {
	db := lifecycleDB(t)
	// ORDER BY forces an external sort, whose buffered tuples are charged
	// against the memory budget; 64 bytes cannot hold even one page.
	q := lifecycleQuery + " ORDER BY T1.K"
	_, err := db.Query(q, engine.Options{Strategy: engine.TransformJA2, MaxBytes: 64})
	if !errors.Is(err, qctx.ErrMemoryBudget) || !errors.Is(err, qctx.ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrMemoryBudget", err)
	}
	if _, err := db.Query(q, engine.Options{Strategy: engine.TransformJA2, MaxBytes: 1 << 20}); err != nil {
		t.Errorf("within budget: %v", err)
	}
}

func TestCancelChannel(t *testing.T) {
	for _, strat := range bothStrategies {
		db := lifecycleDB(t)
		db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
			Seed: 1, Latency: 1.0, LatencyDur: 5 * time.Millisecond,
		}))
		cancel := make(chan struct{})
		go func() {
			time.Sleep(20 * time.Millisecond)
			close(cancel)
		}()
		done := make(chan error, 1)
		go func() {
			_, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat, Cancel: cancel})
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, qctx.ErrCanceled) {
				t.Errorf("%v: err = %v, want ErrCanceled", strat, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: cancellation did not interrupt the query", strat)
		}
	}
}

func TestPreCanceledQuery(t *testing.T) {
	db := lifecycleDB(t)
	cancel := make(chan struct{})
	close(cancel)
	_, err := db.Query(lifecycleQuery, engine.Options{Strategy: engine.NestedIteration, Cancel: cancel})
	if !errors.Is(err, qctx.ErrCanceled) {
		t.Errorf("err = %v, want ErrCanceled for pre-closed channel", err)
	}
}

// TestPanicContainment arms a certain read fault and checks the panic is
// converted to an error that still identifies the fault, on both paths
// and through DML, without killing the process.
func TestPanicContainment(t *testing.T) {
	for _, strat := range bothStrategies {
		db := lifecycleDB(t)
		db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{Seed: 3, ReadError: 1.0}))
		_, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat})
		if !errors.Is(err, storage.ErrInjectedFault) {
			t.Errorf("%v: err = %v, want wrapped ErrInjectedFault", strat, err)
		}
		var pe *qctx.PanicError
		if !errors.As(err, &pe) {
			t.Errorf("%v: err = %v, want a contained *qctx.PanicError", strat, err)
		}
		// After disarming, the same query runs normally — the store is intact.
		db.Store().SetFaultInjector(nil)
		if _, err := db.Query(lifecycleQuery, engine.Options{Strategy: strat}); err != nil {
			t.Errorf("%v: clean rerun failed: %v", strat, err)
		}
	}
}

func TestPanicContainmentDML(t *testing.T) {
	db := lifecycleDB(t)
	db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{Seed: 4, ReadError: 1.0}))
	_, err := db.Exec("DELETE FROM RA WHERE K IN (SELECT K FROM RB)", engine.Options{})
	if !errors.Is(err, storage.ErrInjectedFault) {
		t.Errorf("DML err = %v, want wrapped ErrInjectedFault", err)
	}
}

// TestSequentialRetryAfterWorkerFault allows exactly one injected fault:
// the parallel plan absorbs it, degrades, and the sequential retry (now
// fault-free) must produce the correct result and say so in the trace.
func TestSequentialRetryAfterWorkerFault(t *testing.T) {
	db := lifecycleDB(t)
	want, err := db.Query(lifecycleQuery, engine.Options{Strategy: engine.NestedIteration})
	if err != nil {
		t.Fatal(err)
	}
	db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
		Seed: 5, ReadError: 1.0, MaxFaults: 1,
	}))
	opts := engine.Options{Strategy: engine.TransformJA2}
	opts.Planner.Parallelism = 4
	opts.Planner.ForceParallel = true
	res, err := db.Query(lifecycleQuery, opts)
	if err != nil {
		t.Fatalf("parallel query did not degrade to sequential: %v", err)
	}
	if got, wantSet := sortedSet(res), sortedSet(want); got != wantSet {
		t.Errorf("retried result differs from ground truth:\n  got:  %s\n  want: %s", got, wantSet)
	}
	retried := false
	for _, line := range res.Trace {
		if strings.Contains(line, "retrying sequentially") {
			retried = true
		}
	}
	if !retried {
		t.Errorf("trace does not record the sequential retry: %v", res.Trace)
	}
}

// TestNoRetryOnTimeout pins the retry policy: a deadline violation in a
// parallel plan must NOT be retried (a sequential run would only be
// slower) and surfaces as ErrQueryTimeout.
func TestNoRetryOnTimeout(t *testing.T) {
	db := lifecycleDB(t)
	db.Store().SetFaultInjector(storage.NewFaultInjector(storage.FaultConfig{
		Seed: 6, Latency: 1.0, LatencyDur: 5 * time.Millisecond,
	}))
	opts := engine.Options{Strategy: engine.TransformJA2, Timeout: 30 * time.Millisecond}
	opts.Planner.Parallelism = 4
	opts.Planner.ForceParallel = true
	start := time.Now()
	res, err := db.Query(lifecycleQuery, opts)
	if !errors.Is(err, qctx.ErrQueryTimeout) {
		t.Fatalf("err = %v (res=%v), want ErrQueryTimeout", err, res)
	}
	// Generous bound: one run, not a retry that doubles the latency bill.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("timeout took %v; looks like the timed-out plan was retried", d)
	}
}

// TestRowBudgetNotRetried: a row-budget violation under a parallel plan
// surfaces directly — a sequential rerun would exceed the same budget.
func TestRowBudgetNotRetried(t *testing.T) {
	db := lifecycleDB(t)
	opts := engine.Options{Strategy: engine.TransformJA2, MaxRows: 5}
	opts.Planner.Parallelism = 4
	opts.Planner.ForceParallel = true
	res, err := db.Query(lifecycleQuery, opts)
	if !errors.Is(err, qctx.ErrRowBudget) {
		t.Fatalf("err = %v, want ErrRowBudget", err)
	}
	if res != nil {
		for _, line := range res.Trace {
			if strings.Contains(line, "retrying sequentially") {
				t.Error("row-budget failure must not be retried")
			}
		}
	}
}
