package engine_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// Differential tests for the morsel-driven parallel executor: every query
// is run through nested iteration (ground truth), the sequential NEST-JA2
// pipeline, and the parallel NEST-JA2 pipeline. Parallelism may only
// reorder rows, so parallel-vs-sequential is a bag comparison; against
// nested iteration the set semantics of the transformation apply (Kim's
// Lemma 1), with ALL-quantifier queries excluded as in fuzz_test.go.
//
// ForceParallel bypasses the cost gate so the tiny generated instances
// still exercise the parallel operators, and VerifyParallel arms the
// engine's own oracle on top of the explicit comparisons here.

// parallelOpts enables 4-worker parallel plans with the oracle armed.
func parallelOpts(strategy engine.Strategy) engine.Options {
	return engine.Options{
		Strategy: strategy,
		Planner: planner.Options{
			Parallelism:   4,
			ForceParallel: true,
		},
		VerifyParallel: true,
	}
}

// usedParallel reports whether any plan note mentions a parallel operator.
func usedParallel(res *engine.Result) bool {
	for _, tr := range res.Trace {
		if strings.Contains(tr, "parallel hash") {
			return true
		}
	}
	return false
}

// TestParallelDifferentialFuzz runs the grammar fuzzer's generated queries
// through all three evaluation paths — well over the 200-query bar — and
// requires the parallel path to actually fire on a healthy fraction.
func TestParallelDifferentialFuzz(t *testing.T) {
	const rounds = 250
	parallelPlans := 0
	for i := range rounds {
		rng := rand.New(rand.NewSource(int64(31000 + i)))
		db := fuzzDB(t, rng)
		g := &queryGen{rng: rng}
		sql := g.genQuery()

		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatalf("round %d: NI failed for %q: %v", i, sql, err)
		}
		seq, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2})
		if err != nil {
			t.Fatalf("round %d: sequential transform failed for %q: %v", i, sql, err)
		}
		par, err := db.Query(sql, parallelOpts(engine.TransformJA2))
		if err != nil {
			t.Fatalf("round %d: parallel transform failed for %q: %v", i, sql, err)
		}
		if usedParallel(par) {
			parallelPlans++
		}
		// Parallelism must not change multiplicities: bag equality against
		// the sequential plan, unconditionally.
		if got, want := sortedRows(par), sortedRows(seq); got != want {
			t.Fatalf("round %d: %q parallel != sequential\n  seq: %v\n  par: %v", i, sql, want, got)
		}
		if par.FellBack != seq.FellBack {
			t.Fatalf("round %d: %q fallback disagreement (seq=%v par=%v)", i, sql, seq.FellBack, par.FellBack)
		}
		if strings.Contains(sql, " ALL ") && !par.FellBack {
			continue // ALL rewrites diverge from NI on empty sets by design
		}
		if got, want := sortedSet(par), sortedSet(ni); got != want {
			t.Fatalf("round %d: %q parallel != nested iteration\n  NI:  %v\n  par: %v (fellback=%v)",
				i, sql, want, got, par.FellBack)
		}
	}
	t.Logf("%d/%d rounds used parallel operators", parallelPlans, rounds)
	if parallelPlans == 0 {
		t.Error("no round produced a parallel plan; the test exercises nothing")
	}
}

// TestParallelDifferentialTypeJA sweeps the type-JA shape — the paper's
// COUNT-bug territory — on random PARTS/SUPPLY instances with duplicate
// outer keys, comparing all three paths per aggregate.
func TestParallelDifferentialTypeJA(t *testing.T) {
	aggs := []string{"COUNT(QUAN)", "COUNT(*)", "MAX(QUAN)", "SUM(QUAN)"}
	for seed := range 40 {
		rng := rand.New(rand.NewSource(int64(32000 + seed)))
		db := randomInstance(t, rng, 6)
		for _, agg := range aggs {
			sql := `SELECT PNUM, QOH FROM PARTS WHERE QOH = (SELECT ` + agg +
				` FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`
			ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
			if err != nil {
				t.Fatal(err)
			}
			seq, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
			if err != nil {
				t.Fatal(err)
			}
			par, err := db.Query(sql, parallelOpts(engine.TransformJA2))
			if err != nil {
				t.Fatal(err)
			}
			// NEST-JA2 is duplicate-exact for type-JA: bags all around.
			if got, want := sortedRows(par), sortedRows(seq); got != want {
				t.Fatalf("seed %d agg %s: parallel != sequential\n  seq: %v\n  par: %v", seed, agg, want, got)
			}
			if got, want := sortedRows(par), sortedRows(ni); got != want {
				t.Fatalf("seed %d agg %s: parallel != NI\n  NI:  %v\n  par: %v", seed, agg, want, got)
			}
		}
	}
}

// TestParallelEmptySubqueryCount pins the COUNT-bug case under
// parallelism: outer rows whose correlated subquery is empty must compare
// against COUNT = 0 — a partition with zero matching inner tuples still
// emits the NULL-padded outer row, and COUNT(col) over it yields 0.
func TestParallelEmptySubqueryCount(t *testing.T) {
	db := engine.New(6)
	mustCreate := func(rel *schema.Relation, rows ...storage.Tuple) {
		t.Helper()
		if err := db.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(rel.Name, rows...); err != nil {
			t.Fatal(err)
		}
		if err := db.Seal(rel.Name); err != nil {
			t.Fatal(err)
		}
	}
	// Parts 8 and 9 have no SUPPLY rows at all; part 3 has rows that a
	// restriction can empty out. QOH = 0 rows must survive via COUNT = 0.
	mustCreate(&schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QOH", Type: value.KindInt},
	}},
		storage.Tuple{value.NewInt(3), value.NewInt(2)},
		storage.Tuple{value.NewInt(8), value.NewInt(0)},
		storage.Tuple{value.NewInt(9), value.NewInt(0)},
		storage.Tuple{value.NewInt(10), value.NewInt(1)},
	)
	mustCreate(&schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QUAN", Type: value.KindInt},
	}},
		storage.Tuple{value.NewInt(3), value.NewInt(4)},
		storage.Tuple{value.NewInt(3), value.NewInt(5)},
		storage.Tuple{value.NewInt(10), value.NewInt(6)},
	)
	for _, sql := range []string{
		`SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		`SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(*) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`,
		// The restriction QUAN > 100 empties every group: only COUNT = 0 rows match.
		`SELECT PNUM FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM AND QUAN > 100)`,
	} {
		ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
		if err != nil {
			t.Fatal(err)
		}
		opts := parallelOpts(engine.TransformJA2)
		opts.NoFallback = true
		par, err := db.Query(sql, opts)
		if err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		if got, want := sortedRows(par), sortedRows(ni); got != want {
			t.Errorf("%q:\n  NI:  %v\n  par: %v", sql, want, got)
		}
	}
}

// TestParallelDuplicateOuterKeys pins section 5.4 under parallelism:
// duplicate outer join-column values must each come back (bag semantics),
// which requires the DISTINCT projection before the outer join and hash
// partitioning that keeps every copy of a key on one probe path.
func TestParallelDuplicateOuterKeys(t *testing.T) {
	db := engine.New(6)
	mustCreate := func(rel *schema.Relation, rows ...storage.Tuple) {
		t.Helper()
		if err := db.CreateRelation(rel, 2); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(rel.Name, rows...); err != nil {
			t.Fatal(err)
		}
		if err := db.Seal(rel.Name); err != nil {
			t.Fatal(err)
		}
	}
	// PNUM 3 appears three times with different QOH; PNUM 8 twice with the
	// same QOH — the full row is a duplicate, and both copies must return.
	mustCreate(&schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QOH", Type: value.KindInt},
	}},
		storage.Tuple{value.NewInt(3), value.NewInt(2)},
		storage.Tuple{value.NewInt(3), value.NewInt(0)},
		storage.Tuple{value.NewInt(3), value.NewInt(2)},
		storage.Tuple{value.NewInt(8), value.NewInt(0)},
		storage.Tuple{value.NewInt(8), value.NewInt(0)},
	)
	mustCreate(&schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QUAN", Type: value.KindInt},
	}},
		storage.Tuple{value.NewInt(3), value.NewInt(7)},
		storage.Tuple{value.NewInt(3), value.NewInt(9)},
	)
	sql := `SELECT PNUM, QOH FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`
	ni, err := db.Query(sql, engine.Options{Strategy: engine.NestedIteration})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := db.Query(sql, engine.Options{Strategy: engine.TransformJA2, NoFallback: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := parallelOpts(engine.TransformJA2)
	opts.NoFallback = true
	par, err := db.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := "(3, 2) (3, 2) (8, 0) (8, 0)"
	if got := sortedRows(ni); got != want {
		t.Fatalf("ground truth drifted: %v", got)
	}
	if got := sortedRows(seq); got != want {
		t.Errorf("sequential NEST-JA2: got %v, want %v", got, want)
	}
	if got := sortedRows(par); got != want {
		t.Errorf("parallel NEST-JA2: got %v, want %v", got, want)
	}
}

// TestParallelOracleTraces makes sure the engine-level oracle is not
// vacuous: on a parallel query it must record both comparisons (bag
// against the sequential plan, set against nested iteration) in the
// trace, proving they actually ran.
func TestParallelOracleTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(33000))
	db := randomInstance(t, rng, 6)
	sql := `SELECT PNUM, QOH FROM PARTS WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`
	opts := parallelOpts(engine.TransformJA2)
	opts.NoFallback = true
	par, err := db.Query(sql, opts)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(par.Trace, "\n")
	if !strings.Contains(joined, "bag-equal to sequential plan") {
		t.Error("oracle did not record the sequential comparison")
	}
	if !strings.Contains(joined, "set-equal to nested iteration") {
		t.Error("oracle did not record the nested-iteration comparison")
	}
	if !usedParallel(par) {
		t.Error("query did not use parallel operators")
	}
}
