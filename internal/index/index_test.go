package index_test

import (
	"testing"

	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/value"
)

// buildFixture loads a 2-column file with keys k%10 and positions, plus a
// NULL-keyed row, and indexes column 0.
func buildFixture(t *testing.T, n int) (*storage.Store, *index.Index) {
	t.Helper()
	s := storage.NewStore(8)
	f, err := s.Create("R", 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := range n {
		f.Append(storage.Tuple{value.NewInt(int64(k % 10)), value.NewInt(int64(k))})
	}
	f.Append(storage.Tuple{value.Null, value.NewInt(-1)})
	f.Seal()
	return s, index.Build(s, f, "R", "K", 0)
}

func lookupKeys(t *testing.T, idx *index.Index, op value.CompareOp, key int64) []int64 {
	t.Helper()
	cur, ok := idx.Lookup(op, value.NewInt(key))
	if !ok {
		t.Fatalf("Lookup(%v, %d) unsupported", op, key)
	}
	var out []int64
	for {
		tu, ok := cur.Next()
		if !ok {
			return out
		}
		out = append(out, tu[0].Int())
	}
}

func TestBuildExcludesNulls(t *testing.T) {
	_, idx := buildFixture(t, 40)
	if idx.Entries() != 40 {
		t.Errorf("entries = %d, want 40 (NULL key excluded)", idx.Entries())
	}
	if idx.Pages() != (40+15)/16 { // 4 tuples/page * factor 4
		t.Errorf("index pages = %d", idx.Pages())
	}
}

func TestLookupOperators(t *testing.T) {
	_, idx := buildFixture(t, 40) // keys 0..9, four of each
	cases := []struct {
		op   value.CompareOp
		key  int64
		want int
	}{
		{value.OpEq, 3, 4},
		{value.OpLt, 3, 12},
		{value.OpLe, 3, 16},
		{value.OpGt, 7, 8},
		{value.OpGe, 7, 12},
		{value.OpEq, 99, 0},
	}
	for _, c := range cases {
		got := lookupKeys(t, idx, c.op, c.key)
		if len(got) != c.want {
			t.Errorf("%v %d: %d matches, want %d", c.op, c.key, len(got), c.want)
		}
		for _, k := range got {
			tri, _ := c.op.Apply(value.NewInt(k), value.NewInt(c.key))
			if !tri.IsTrue() {
				t.Errorf("%v %d returned non-matching key %d", c.op, c.key, k)
			}
		}
		// Output is in key order.
		for i := 1; i < len(got); i++ {
			if got[i-1] > got[i] {
				t.Errorf("%v %d: out of order: %v", c.op, c.key, got)
			}
		}
	}
}

func TestLookupUnsupported(t *testing.T) {
	_, idx := buildFixture(t, 10)
	if _, ok := idx.Lookup(value.OpNe, value.NewInt(1)); ok {
		t.Error("!= must not use the index")
	}
	if _, ok := idx.Lookup(value.OpEq, value.Null); ok {
		t.Error("NULL key must not use the index")
	}
	if _, ok := idx.EstimateMatches(value.OpNe, value.NewInt(1)); ok {
		t.Error("EstimateMatches must reject !=")
	}
}

func TestLookupChargesIndexPages(t *testing.T) {
	s, idx := buildFixture(t, 160) // 160 entries, 16/page = 10 index pages
	s.ResetStats()
	n, _ := idx.EstimateMatches(value.OpGe, value.NewInt(0))
	if n != 160 {
		t.Fatalf("estimate = %d", n)
	}
	if got := s.Stats().Reads; got != 0 {
		t.Errorf("EstimateMatches charged %d reads", got)
	}
	cur, _ := idx.Lookup(value.OpGe, value.NewInt(0))
	// 1 descent + ceil((160-1)/16) = 1 + 9 = 10 index page reads.
	if got := s.Stats().Reads; got != 10 {
		t.Errorf("index reads = %d, want 10", got)
	}
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	// Base pages fetched through the pool: 41 pages total file.
	if got := s.Stats().Reads; got < 10+41 {
		t.Errorf("total reads = %d, want >= 51", got)
	}
}

func TestRegistry(t *testing.T) {
	s, idx := buildFixture(t, 10)
	_ = s
	r := index.NewRegistry()
	if err := r.Add(idx); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(idx); err == nil {
		t.Error("duplicate Add accepted")
	}
	if r.On("r", "k") != idx {
		t.Error("case-insensitive lookup failed")
	}
	if r.On("R", "NOPE") != nil {
		t.Error("unknown column resolved")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "R.K" {
		t.Errorf("Names = %v", got)
	}
	r.DropRelation("r")
	if r.On("R", "K") != nil {
		t.Error("DropRelation did not remove index")
	}
	var nilReg *index.Registry
	if nilReg.On("R", "K") != nil {
		t.Error("nil registry must resolve nothing")
	}
}
