// Package index implements secondary indexes at the granularity the
// paper's cost model needs: a dense, sorted array of (key, page, slot)
// entries over one column of a heap file, charged like System R index
// pages — scanning a key range reads the covering index pages plus the
// base pages of the matching tuples.
//
// The paper itself assumes sequential scans "for simplicity" (section 7),
// but mentions indexes where they matter: a system might perform a join
// first "to take advantage of indices on the join columns", the evaluation
// order NEST-JA2's step 2 exists to prevent. Indexes here give the planner
// a selective access path for restrictions and preserve the indexed
// column's order, so an index scan can feed a merge join without a sort.
package index

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
	"repro/internal/value"
)

// entriesPerPageFactor relates index page capacity to tuple page capacity:
// an index entry is a key plus a tuple pointer, several times smaller than
// a full tuple.
const entriesPerPageFactor = 4

// Entry locates one tuple by key.
type Entry struct {
	Key  value.Value
	Page int
	Slot int
}

// Index is a sorted dense index over one column. NULL keys are excluded
// (no comparison predicate matches NULL).
type Index struct {
	Relation string
	Column   string

	store          *storage.Store
	file           *storage.HeapFile
	entries        []Entry
	entriesPerPage int
}

// Build scans the heap file once (charged) and constructs the index on
// column colIdx.
func Build(store *storage.Store, file *storage.HeapFile, relation, column string, colIdx int) *Index {
	idx := &Index{
		Relation:       relation,
		Column:         column,
		store:          store,
		file:           file,
		entriesPerPage: file.TuplesPerPage() * entriesPerPageFactor,
	}
	for p := 0; p < file.NumPages(); p++ {
		tuples := file.ReadPage(p)
		for s, t := range tuples {
			if t[colIdx].IsNull() {
				continue
			}
			idx.entries = append(idx.entries, Entry{Key: t[colIdx], Page: p, Slot: s})
		}
	}
	sort.SliceStable(idx.entries, func(i, j int) bool {
		return keyLess(idx.entries[i].Key, idx.entries[j].Key)
	})
	return idx
}

// keyLess orders two index keys. Keys come from one typed column, so they
// are homogeneous non-NULL values and the comparison cannot fail; span
// pre-validates probe values before any lookup relies on this.
func keyLess(a, b value.Value) bool {
	c, _ := value.TotalCompare(a, b)
	return c < 0
}

// Entries returns the total entry count.
func (idx *Index) Entries() int { return len(idx.entries) }

// Pages returns the index size in index pages.
func (idx *Index) Pages() int {
	if len(idx.entries) == 0 {
		return 0
	}
	return (len(idx.entries) + idx.entriesPerPage - 1) / idx.entriesPerPage
}

// span computes the half-open entry range [lo, hi) matching key op val,
// where op relates the indexed column (left) to val.
func (idx *Index) span(op value.CompareOp, val value.Value) (lo, hi int, ok bool) {
	if val.IsNull() {
		return 0, 0, false
	}
	// A probe value of a kind incomparable with the key column (e.g. a
	// string literal against an integer index) cannot use the index; the
	// planner then falls back to a scan whose filter reports the type
	// error through the normal eval path.
	if len(idx.entries) > 0 {
		if _, err := value.TotalCompare(val, idx.entries[0].Key); err != nil {
			return 0, 0, false
		}
	}
	lower := sort.Search(len(idx.entries), func(i int) bool {
		return !keyLess(idx.entries[i].Key, val) // first >= val
	})
	upper := sort.Search(len(idx.entries), func(i int) bool {
		return keyLess(val, idx.entries[i].Key) // first > val
	})
	switch op {
	case value.OpEq:
		return lower, upper, true
	case value.OpLt:
		return 0, lower, true
	case value.OpLe:
		return 0, upper, true
	case value.OpGt:
		return upper, len(idx.entries), true
	case value.OpGe:
		return lower, len(idx.entries), true
	default: // != scans almost everything; an index does not help
		return 0, 0, false
	}
}

// EstimateMatches returns how many entries op/val selects, without
// charging any I/O (the planner's costing probe).
func (idx *Index) EstimateMatches(op value.CompareOp, val value.Value) (int, bool) {
	lo, hi, ok := idx.span(op, val)
	if !ok {
		return 0, false
	}
	return hi - lo, true
}

// Cursor iterates the matching entries of one lookup. Creating it charges
// the covering index pages (plus one descent page) as direct reads.
type Cursor struct {
	idx    *Index
	pos    int
	end    int
	handed int
}

// Lookup opens a cursor over the entries matching op/val, charging the
// index page reads. ok is false when the operator cannot use the index.
func (idx *Index) Lookup(op value.CompareOp, val value.Value) (*Cursor, bool) {
	lo, hi, ok := idx.span(op, val)
	if !ok {
		return nil, false
	}
	pages := 1 // descent to the first leaf
	if hi > lo {
		pages += (hi - lo - 1) / idx.entriesPerPage
	}
	idx.store.ChargeReads(int64(pages))
	return &Cursor{idx: idx, pos: lo, end: hi}, true
}

// Next returns the next matching tuple in key order, fetching its base
// page through the buffer pool.
func (c *Cursor) Next() (storage.Tuple, bool) {
	if c.pos >= c.end {
		return nil, false
	}
	e := c.idx.entries[c.pos]
	c.pos++
	c.handed++
	return c.idx.file.ReadPage(e.Page)[e.Slot], true
}

// Registry holds the indexes of a database, keyed by relation and column.
type Registry struct {
	byKey map[string]*Index
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*Index)}
}

func regKey(relation, column string) string {
	return strings.ToUpper(relation) + "." + strings.ToUpper(column)
}

// Add registers an index; one index per (relation, column).
func (r *Registry) Add(idx *Index) error {
	k := regKey(idx.Relation, idx.Column)
	if _, ok := r.byKey[k]; ok {
		return fmt.Errorf("index: %s already indexed", k)
	}
	r.byKey[k] = idx
	return nil
}

// On returns the index on relation.column, if any.
func (r *Registry) On(relation, column string) *Index {
	if r == nil {
		return nil
	}
	return r.byKey[regKey(relation, column)]
}

// DropRelation removes every index of a relation (used when its data
// changes; indexes here are build-once snapshots).
func (r *Registry) DropRelation(relation string) {
	prefix := strings.ToUpper(relation) + "."
	for k := range r.byKey {
		if strings.HasPrefix(k, prefix) {
			delete(r.byKey, k)
		}
	}
}

// Names lists the registered indexes as REL.COL strings, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
