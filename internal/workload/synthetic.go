package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// SyntheticConfig parameterizes a two-relation correlated workload in the
// paper's vocabulary: an outer relation RI of Ni tuples across Pi pages
// and an inner relation RJ of Nj tuples across Pj pages, related through a
// join column with a bounded domain. The performance experiments sweep
// these knobs to regenerate the paper's cost comparisons.
type SyntheticConfig struct {
	Name string // experiment label

	OuterTuples   int     // Ni
	InnerTuples   int     // Nj
	OuterPerPage  int     // tuples per page of RI (controls Pi)
	InnerPerPage  int     // tuples per page of RJ (controls Pj)
	JoinDomain    int     // distinct join-column values; Ni/JoinDomain duplicates per value in RI
	Selectivity   float64 // f(i): fraction of RI tuples passing the simple predicate FILT < cutoff
	MatchFraction float64 // fraction of RJ tuples passing the inner simple predicate
	Seed          int64
}

// DefaultSynthetic is a medium workload whose inner relation exceeds small
// buffer pools, the regime where nested iteration degrades.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Name:          "default",
		OuterTuples:   500,
		InnerTuples:   1000,
		OuterPerPage:  10,
		InnerPerPage:  10,
		JoinDomain:    100,
		Selectivity:   1.0,
		MatchFraction: 0.5,
		Seed:          1987,
	}
}

// OuterRelationName and InnerRelationName are the generated relation
// names; queries over the workload reference them.
const (
	OuterRelationName = "RI"
	InnerRelationName = "RJ"
)

// LoadSynthetic generates and loads the two relations:
//
//	RI(JC, VAL, FILT) — JC cycles over the join domain, VAL is a small
//	    aggregate-comparable value, FILT in [0,100) drives f(i).
//	RJ(JC, VAL, FILT) — JC cycles over the same domain.
//
// Values are deterministic for a given Seed.
func LoadSynthetic(db *DB, cfg SyntheticConfig) error {
	if cfg.JoinDomain <= 0 || cfg.OuterTuples <= 0 || cfg.InnerTuples <= 0 {
		return fmt.Errorf("workload: invalid synthetic config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// FILT cycles deterministically so a cutoff of c selects exactly c%
	// of the tuples (up to rounding): the experiments hit the paper's
	// f(i)·Ni values precisely instead of within sampling noise.
	outer := make([]storage.Tuple, cfg.OuterTuples)
	for k := range outer {
		outer[k] = storage.Tuple{
			i(int64(k % cfg.JoinDomain)),
			i(int64(rng.Intn(8))),
			i(int64(k % 100)),
		}
	}
	inner := make([]storage.Tuple, cfg.InnerTuples)
	for k := range inner {
		inner[k] = storage.Tuple{
			i(int64(rng.Intn(cfg.JoinDomain))),
			i(int64(rng.Intn(8))),
			i(int64((k * 7) % 100)),
		}
	}
	cols := []schema.Column{
		{Name: "JC", Type: value.KindInt},
		{Name: "VAL", Type: value.KindInt},
		{Name: "FILT", Type: value.KindInt},
	}
	if err := db.Load(&schema.Relation{Name: OuterRelationName, Columns: cols}, cfg.OuterPerPage, outer); err != nil {
		return err
	}
	return db.Load(&schema.Relation{Name: InnerRelationName, Columns: cols}, cfg.InnerPerPage, inner)
}

// FilterCutoff converts a fraction to the FILT < cutoff threshold used by
// the generated predicates.
func FilterCutoff(fraction float64) int {
	c := int(fraction * 100)
	if c < 0 {
		c = 0
	}
	if c > 100 {
		c = 100
	}
	return c
}

// TypeJAQuery builds the canonical type-JA benchmark query over the
// synthetic relations: a correlated COUNT compared to the outer VAL, with
// simple predicates realizing f(i) and the inner match fraction.
func TypeJAQuery(cfg SyntheticConfig) string {
	return fmt.Sprintf(`
		SELECT JC FROM RI
		WHERE FILT < %d AND
		      VAL = (SELECT COUNT(VAL) FROM RJ
		             WHERE RJ.JC = RI.JC AND RJ.FILT < %d)`,
		FilterCutoff(cfg.Selectivity), FilterCutoff(cfg.MatchFraction))
}

// TypeJAMaxQuery is the MAX variant (no outer join needed in NEST-JA2).
func TypeJAMaxQuery(cfg SyntheticConfig) string {
	return fmt.Sprintf(`
		SELECT JC FROM RI
		WHERE FILT < %d AND
		      VAL = (SELECT MAX(VAL) FROM RJ
		             WHERE RJ.JC = RI.JC AND RJ.FILT < %d)`,
		FilterCutoff(cfg.Selectivity), FilterCutoff(cfg.MatchFraction))
}

// TypeJQuery builds a type-J benchmark query (correlated IN, no
// aggregate).
func TypeJQuery(cfg SyntheticConfig) string {
	return fmt.Sprintf(`
		SELECT JC FROM RI
		WHERE FILT < %d AND
		      VAL IN (SELECT VAL FROM RJ
		              WHERE RJ.JC = RI.JC AND RJ.FILT < %d)`,
		FilterCutoff(cfg.Selectivity), FilterCutoff(cfg.MatchFraction))
}

// TypeNQuery builds a type-N benchmark query (uncorrelated IN).
func TypeNQuery(cfg SyntheticConfig) string {
	return fmt.Sprintf(`
		SELECT JC FROM RI
		WHERE FILT < %d AND
		      JC IN (SELECT JC FROM RJ WHERE RJ.FILT < %d)`,
		FilterCutoff(cfg.Selectivity), FilterCutoff(cfg.MatchFraction))
}
