package workload_test

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

func TestPaperFixturesLoad(t *testing.T) {
	cases := []struct {
		name   string
		load   func(*workload.DB) error
		tables map[string]int // relation -> tuple count
	}{
		{"kiessling", workload.LoadKiessling, map[string]int{"PARTS": 3, "SUPPLY": 5}},
		{"nonequality", workload.LoadNonEquality, map[string]int{"PARTS": 3, "SUPPLY": 4}},
		{"duplicates", workload.LoadDuplicates, map[string]int{"PARTS": 5, "SUPPLY": 3}},
		{"suppliers", workload.LoadSuppliers, map[string]int{"S": 5, "P": 6, "SP": 12}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			db := workload.NewDB(8)
			if err := c.load(db); err != nil {
				t.Fatal(err)
			}
			for rel, n := range c.tables {
				if _, ok := db.Cat.Lookup(rel); !ok {
					t.Errorf("relation %s not in catalog", rel)
				}
				f, ok := db.Store.Lookup(rel)
				if !ok {
					t.Fatalf("relation %s not stored", rel)
				}
				if f.NumTuples() != n {
					t.Errorf("%s has %d tuples, want %d", rel, f.NumTuples(), n)
				}
			}
		})
	}
}

func TestLoadValidatesRows(t *testing.T) {
	db := workload.NewDB(4)
	rel := &schema.Relation{Name: "R", Columns: []schema.Column{{Name: "A", Type: value.KindInt}}}
	err := db.Load(rel, 0, []storage.Tuple{{value.NewInt(1), value.NewInt(2)}})
	if err == nil {
		t.Error("arity mismatch not caught")
	}
	// Second Load with the same relation name fails in the catalog.
	db2 := workload.NewDB(4)
	if err := db2.Load(rel, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := db2.Load(rel, 0, nil); err == nil {
		t.Error("duplicate relation not caught")
	}
}

func TestSyntheticGeneration(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	db := workload.NewDB(8)
	if err := workload.LoadSynthetic(db, cfg); err != nil {
		t.Fatal(err)
	}
	ri, _ := db.Store.Lookup(workload.OuterRelationName)
	rj, _ := db.Store.Lookup(workload.InnerRelationName)
	if ri.NumTuples() != cfg.OuterTuples || rj.NumTuples() != cfg.InnerTuples {
		t.Errorf("tuple counts: %d / %d", ri.NumTuples(), rj.NumTuples())
	}
	wantPi := (cfg.OuterTuples + cfg.OuterPerPage - 1) / cfg.OuterPerPage
	if ri.NumPages() != wantPi {
		t.Errorf("Pi = %d, want %d", ri.NumPages(), wantPi)
	}
	// Join-column values stay within the domain.
	ri.Scan(func(tu storage.Tuple) bool {
		if jc := tu[0].Int(); jc < 0 || jc >= int64(cfg.JoinDomain) {
			t.Errorf("JC %d outside domain", jc)
			return false
		}
		return true
	})
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	sum := func() int64 {
		db := workload.NewDB(8)
		if err := workload.LoadSynthetic(db, cfg); err != nil {
			t.Fatal(err)
		}
		rj, _ := db.Store.Lookup(workload.InnerRelationName)
		var s int64
		rj.Scan(func(tu storage.Tuple) bool {
			s += tu[1].Int()
			return true
		})
		return s
	}
	if sum() != sum() {
		t.Error("generation not deterministic for fixed seed")
	}
}

func TestSyntheticInvalidConfig(t *testing.T) {
	db := workload.NewDB(8)
	cfg := workload.DefaultSynthetic()
	cfg.JoinDomain = 0
	if err := workload.LoadSynthetic(db, cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFilterCutoff(t *testing.T) {
	cases := map[float64]int{-0.5: 0, 0: 0, 0.5: 50, 1: 100, 2: 100}
	for f, want := range cases {
		if got := workload.FilterCutoff(f); got != want {
			t.Errorf("FilterCutoff(%v) = %d, want %d", f, got, want)
		}
	}
}

func TestQueryBuildersParse(t *testing.T) {
	cfg := workload.DefaultSynthetic()
	db := workload.NewDB(8)
	if err := workload.LoadSynthetic(db, cfg); err != nil {
		t.Fatal(err)
	}
	for name, sql := range map[string]string{
		"typeJA":    workload.TypeJAQuery(cfg),
		"typeJAMax": workload.TypeJAMaxQuery(cfg),
		"typeJ":     workload.TypeJQuery(cfg),
		"typeN":     workload.TypeNQuery(cfg),
	} {
		if _, err := parseAndResolve(db, sql); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func parseAndResolve(db *workload.DB, sql string) (any, error) {
	qb, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	_, err = schema.Resolve(db.Cat, qb)
	return qb, err
}
