// Package workload builds the databases the paper evaluates on: the
// literal example instances from the text (Kiessling's PARTS/SUPPLY tables
// and the two variants the paper introduces in sections 5.3 and 5.4, plus
// the S/P/SP suppliers database of the introduction) and parameterized
// synthetic databases for the performance experiments.
package workload

import (
	"fmt"

	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// DB bundles a catalog and a store so fixtures can be loaded anywhere.
type DB struct {
	Cat   *schema.Catalog
	Store *storage.Store
}

// NewDB creates an empty database with a B-page buffer pool.
func NewDB(bufferPages int) *DB {
	return &DB{Cat: schema.NewCatalog(), Store: storage.NewStore(bufferPages)}
}

// Load defines a relation and stores its rows. tuplesPerPage <= 0 uses the
// storage default.
func (db *DB) Load(rel *schema.Relation, tuplesPerPage int, rows []storage.Tuple) error {
	if err := db.Cat.Define(rel); err != nil {
		return err
	}
	f, err := db.Store.Create(rel.Name, tuplesPerPage)
	if err != nil {
		return err
	}
	for _, r := range rows {
		if len(r) != len(rel.Columns) {
			return fmt.Errorf("workload: row %v does not match schema of %s", r, rel.Name)
		}
		f.Append(r)
	}
	f.Seal()
	return nil
}

func i(v int64) value.Value  { return value.NewInt(v) }
func s(v string) value.Value { return value.NewString(v) }
func d(v string) value.Value {
	dt, err := value.ParseDate(v)
	if err != nil {
		panic(err) // static paper data, parse failure is a programming error
	}
	return value.NewDateValue(dt)
}

func partsRel() *schema.Relation {
	return &schema.Relation{Name: "PARTS", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QOH", Type: value.KindInt},
	}}
}

func supplyRel() *schema.Relation {
	return &schema.Relation{Name: "SUPPLY", Columns: []schema.Column{
		{Name: "PNUM", Type: value.KindInt},
		{Name: "QUAN", Type: value.KindInt},
		{Name: "SHIPDATE", Type: value.KindDate},
	}}
}

// LoadKiessling loads the PARTS and SUPPLY instances of [KIE 84:2], used in
// section 5.1 to demonstrate the COUNT bug. Against Kiessling's query Q2,
// nested iteration yields PNUM ∈ {10, 8}; Kim's NEST-JA loses part 8
// (whose correlated COUNT is 0) and yields only {10}.
func LoadKiessling(db *DB) error {
	if err := db.Load(partsRel(), 0, []storage.Tuple{
		{i(3), i(6)},
		{i(10), i(1)},
		{i(8), i(0)},
	}); err != nil {
		return err
	}
	return db.Load(supplyRel(), 0, []storage.Tuple{
		{i(3), i(4), d("7-3-79")},
		{i(3), i(2), d("10-1-78")},
		{i(10), i(1), d("6-8-78")},
		{i(10), i(2), d("8-10-81")},
		{i(8), i(5), d("5-7-83")},
	})
}

// LoadNonEquality loads the PARTS and SUPPLY instances of section 5.3,
// used to demonstrate the relations-other-than-equality bug with query Q5
// (the "<" variant of Kiessling's Q1). Nested iteration yields {8}; Kim's
// NEST-JA yields {10, 8}.
func LoadNonEquality(db *DB) error {
	if err := db.Load(partsRel(), 0, []storage.Tuple{
		{i(3), i(0)},
		{i(10), i(4)},
		{i(8), i(4)},
	}); err != nil {
		return err
	}
	return db.Load(supplyRel(), 0, []storage.Tuple{
		{i(3), i(4), d("7-3-79")},
		{i(3), i(2), d("10-1-78")},
		{i(10), i(1), d("6-8-78")},
		{i(9), i(5), d("3-2-79")},
	})
}

// LoadDuplicates loads the PARTS and SUPPLY instances of section 5.4, where
// PARTS has duplicate join-column values. Against query Q2 nested iteration
// yields {3, 10, 8}; the outer-join fix without the DISTINCT projection
// yields only {8}.
func LoadDuplicates(db *DB) error {
	if err := db.Load(partsRel(), 0, []storage.Tuple{
		{i(3), i(6)},
		{i(3), i(2)},
		{i(10), i(1)},
		{i(10), i(0)},
		{i(8), i(0)},
	}); err != nil {
		return err
	}
	return db.Load(supplyRel(), 0, []storage.Tuple{
		{i(3), i(4), d("8/14/77")},
		{i(3), i(2), d("11/11/78")},
		{i(10), i(1), d("6/22/76")},
	})
}

// KiesslingQ2 is query Q2 of [KIE 84:4]: "find the part numbers of those
// parts whose quantities on hand equal the number of shipments of those
// parts before 1-1-80".
const KiesslingQ2 = `
SELECT PNUM
FROM   PARTS
WHERE  QOH = (SELECT COUNT(SHIPDATE)
              FROM   SUPPLY
              WHERE  SUPPLY.PNUM = PARTS.PNUM AND
                     SHIPDATE < 1-1-80)`

// KiesslingQ2CountStar is Q2 with COUNT(*) instead of COUNT(SHIPDATE) —
// the section 5.2.1 variant that forces the COUNT(*) conversion rule.
const KiesslingQ2CountStar = `
SELECT PNUM
FROM   PARTS
WHERE  QOH = (SELECT COUNT(*)
              FROM   SUPPLY
              WHERE  SUPPLY.PNUM = PARTS.PNUM AND
                     SHIPDATE < 1-1-80)`

// GanskiQ5 is query Q5 of section 5.3: Kiessling's Q1 with "<" substituted
// for "=" in the correlated join predicate.
const GanskiQ5 = `
SELECT PNUM
FROM   PARTS
WHERE  QOH = (SELECT MAX(QUAN)
              FROM   SUPPLY
              WHERE  SUPPLY.PNUM < PARTS.PNUM AND
                     SHIPDATE < 1-1-80)`

// LoadSuppliers loads the S/P/SP suppliers database of the paper's
// introduction with a small, plausible instance (the paper gives only the
// schema). Keys: S(SNO), P(PNO), SP(SNO,PNO).
func LoadSuppliers(db *DB) error {
	if err := db.Load(&schema.Relation{Name: "S", Columns: []schema.Column{
		{Name: "SNO", Type: value.KindString},
		{Name: "SNAME", Type: value.KindString},
		{Name: "STATUS", Type: value.KindInt},
		{Name: "CITY", Type: value.KindString},
	}, Key: []string{"SNO"}}, 0, []storage.Tuple{
		{s("S1"), s("Smith"), i(20), s("London")},
		{s("S2"), s("Jones"), i(10), s("Paris")},
		{s("S3"), s("Blake"), i(30), s("Paris")},
		{s("S4"), s("Clark"), i(20), s("London")},
		{s("S5"), s("Adams"), i(30), s("Athens")},
	}); err != nil {
		return err
	}
	if err := db.Load(&schema.Relation{Name: "P", Columns: []schema.Column{
		{Name: "PNO", Type: value.KindString},
		{Name: "PNAME", Type: value.KindString},
		{Name: "COLOR", Type: value.KindString},
		{Name: "WEIGHT", Type: value.KindInt},
		{Name: "CITY", Type: value.KindString},
	}, Key: []string{"PNO"}}, 0, []storage.Tuple{
		{s("P1"), s("Nut"), s("Red"), i(12), s("London")},
		{s("P2"), s("Bolt"), s("Green"), i(17), s("Paris")},
		{s("P3"), s("Screw"), s("Blue"), i(17), s("Oslo")},
		{s("P4"), s("Screw"), s("Red"), i(14), s("London")},
		{s("P5"), s("Cam"), s("Blue"), i(12), s("Paris")},
		{s("P6"), s("Cog"), s("Red"), i(19), s("London")},
	}); err != nil {
		return err
	}
	return db.Load(&schema.Relation{Name: "SP", Columns: []schema.Column{
		{Name: "SNO", Type: value.KindString},
		{Name: "PNO", Type: value.KindString},
		{Name: "QTY", Type: value.KindInt},
		{Name: "ORIGIN", Type: value.KindString},
	}, Key: []string{"SNO", "PNO"}}, 0, []storage.Tuple{
		{s("S1"), s("P1"), i(300), s("London")},
		{s("S1"), s("P2"), i(200), s("London")},
		{s("S1"), s("P3"), i(400), s("Oslo")},
		{s("S1"), s("P4"), i(200), s("London")},
		{s("S1"), s("P5"), i(100), s("Paris")},
		{s("S1"), s("P6"), i(100), s("London")},
		{s("S2"), s("P1"), i(300), s("Paris")},
		{s("S2"), s("P2"), i(400), s("Paris")},
		{s("S3"), s("P2"), i(200), s("Paris")},
		{s("S4"), s("P2"), i(200), s("London")},
		{s("S4"), s("P4"), i(300), s("London")},
		{s("S4"), s("P5"), i(400), s("London")},
	})
}
