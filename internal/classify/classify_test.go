package classify_test

import (
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/value"
)

// cat builds the paper's catalogs.
func cat(t *testing.T) *schema.Catalog {
	t.Helper()
	c := schema.NewCatalog()
	rels := []*schema.Relation{
		{Name: "S", Columns: []schema.Column{
			{Name: "SNO", Type: value.KindString}, {Name: "SNAME", Type: value.KindString},
			{Name: "STATUS", Type: value.KindInt}, {Name: "CITY", Type: value.KindString}}},
		{Name: "P", Columns: []schema.Column{
			{Name: "PNO", Type: value.KindString}, {Name: "PNAME", Type: value.KindString},
			{Name: "WEIGHT", Type: value.KindInt}, {Name: "CITY", Type: value.KindString}}},
		{Name: "SP", Columns: []schema.Column{
			{Name: "SNO", Type: value.KindString}, {Name: "PNO", Type: value.KindString},
			{Name: "QTY", Type: value.KindInt}, {Name: "ORIGIN", Type: value.KindString}}},
	}
	for _, r := range rels {
		if err := c.Define(r); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// classifyFirst resolves the query and classifies its first predicate.
func classifyFirst(t *testing.T, src string) classify.NestType {
	t.Helper()
	qb := sqlparser.MustParse(src)
	if _, err := schema.Resolve(cat(t), qb); err != nil {
		t.Fatal(err)
	}
	return classify.Classify(qb.Where[0])
}

// The four canonical examples of section 2.
func TestClassifyPaperExamples(t *testing.T) {
	cases := []struct {
		src  string
		want classify.NestType
	}{
		// Example 2: type-A.
		{"SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)", classify.TypeA},
		// Example 3: type-N.
		{"SELECT SNO FROM SP WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 50)", classify.TypeN},
		// Example 4: type-J.
		{"SELECT SNAME FROM S WHERE SNO IS IN (SELECT SNO FROM SP WHERE QTY > 100 AND SP.ORIGIN = S.CITY)", classify.TypeJ},
		// Example 5: type-JA.
		{"SELECT PNAME FROM P WHERE PNO = (SELECT MAX(PNO) FROM SP WHERE SP.ORIGIN = P.CITY)", classify.TypeJA},
	}
	for _, c := range cases {
		if got := classifyFirst(t, c.src); got != c.want {
			t.Errorf("%q: %v, want %v", c.src, got, c.want)
		}
	}
}

func TestClassifyNotNested(t *testing.T) {
	if got := classifyFirst(t, "SELECT SNO FROM SP WHERE QTY > 100"); got != classify.NotNested {
		t.Errorf("simple predicate = %v", got)
	}
}

// Correlation anywhere in the subtree makes the predicate type-J/JA, even
// when the join predicate sits below another nesting level (the section
// 9.1 trans-aggregate situation).
func TestClassifyDeepCorrelation(t *testing.T) {
	got := classifyFirst(t, `
		SELECT SNAME FROM S
		WHERE STATUS = (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`)
	if got != classify.TypeJA {
		t.Errorf("deep correlation = %v, want type-JA", got)
	}
	got = classifyFirst(t, `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP
		              WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`)
	if got != classify.TypeJ {
		t.Errorf("deep correlation without aggregate = %v, want type-J", got)
	}
}

func TestNestTypeStrings(t *testing.T) {
	want := map[classify.NestType]string{
		classify.NotNested: "not nested",
		classify.TypeA:     "type-A",
		classify.TypeN:     "type-N",
		classify.TypeJ:     "type-J",
		classify.TypeJA:    "type-JA",
	}
	for ty, s := range want {
		if ty.String() != s {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
	if !strings.Contains(classify.NestType(99).String(), "99") {
		t.Error("unknown type string")
	}
}

func TestProfile(t *testing.T) {
	qb := sqlparser.MustParse(`
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP WHERE SP.ORIGIN = S.CITY) AND
		      STATUS = (SELECT MAX(WEIGHT) FROM P)`)
	if _, err := schema.Resolve(cat(t), qb); err != nil {
		t.Fatal(err)
	}
	prof := classify.Profile(qb)
	if prof.Blocks != 3 || prof.MaxDepth != 1 {
		t.Errorf("profile = %+v", prof)
	}
	if len(prof.Types) != 2 || prof.Types[0] != classify.TypeJ || prof.Types[1] != classify.TypeA {
		t.Errorf("types = %v", prof.Types)
	}
}
