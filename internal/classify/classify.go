// Package classify implements Kim's classification of nested predicates
// (section 2 of the paper), on which the choice of transformation
// algorithm depends:
//
//   - type-A: the inner block is independent of the outer block and its
//     SELECT clause is an aggregate — it evaluates to a single constant.
//   - type-N: independent, no aggregate — a set of values.
//   - type-J: the inner block contains a join predicate referencing an
//     outer relation, no aggregate.
//   - type-JA: a correlated join predicate and an aggregate SELECT clause.
//
// Classification requires a resolved query tree (schema.Resolve), because
// "references a relation of an outer query block" is a binding property.
package classify

import (
	"fmt"

	"repro/internal/ast"
)

// NestType is the nesting type of one nested predicate.
type NestType uint8

// The four types of section 2, plus NotNested for predicates without a
// subquery.
const (
	NotNested NestType = iota
	TypeA
	TypeN
	TypeJ
	TypeJA
)

// String renders the type as the paper names it.
func (t NestType) String() string {
	switch t {
	case NotNested:
		return "not nested"
	case TypeA:
		return "type-A"
	case TypeN:
		return "type-N"
	case TypeJ:
		return "type-J"
	case TypeJA:
		return "type-JA"
	default:
		return fmt.Sprintf("NestType(%d)", uint8(t))
	}
}

// Classify determines the nesting type of predicate p. The predicate's
// inner block is examined as a whole subtree: it is correlated if any
// reference inside it binds outside it (after the recursive transformation
// of deeper levels, such references have migrated into the block itself —
// the "trans-aggregate" join predicates of section 9.1).
func Classify(p ast.Predicate) NestType {
	sub := ast.SubqueryOf(p)
	if sub == nil {
		return NotNested
	}
	correlated := ast.IsCorrelated(sub)
	agg := sub.HasAggregate()
	switch {
	case !correlated && agg:
		return TypeA
	case !correlated && !agg:
		return TypeN
	case correlated && !agg:
		return TypeJ
	default:
		return TypeJA
	}
}

// QueryProfile summarizes the nesting structure of a whole query: the
// number of blocks, maximum depth, and the multiset of predicate types at
// each level. EXPLAIN prints it.
type QueryProfile struct {
	Blocks   int
	MaxDepth int
	Types    []NestType // one entry per nested predicate, preorder
}

// Profile walks the query and classifies every nested predicate.
func Profile(qb *ast.QueryBlock) QueryProfile {
	prof := QueryProfile{MaxDepth: qb.MaxDepth()}
	ast.VisitBlocks(qb, func(b *ast.QueryBlock, _ int) bool {
		prof.Blocks++
		for _, p := range b.Where {
			if ast.IsNested(p) {
				prof.Types = append(prof.Types, Classify(p))
			}
		}
		return true
	})
	return prof
}
