package classify_test

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/metamorph"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

// TestMetamorphGeneratorShapes cross-checks the two sides of the
// metamorphic fuzzer's contract with Kim's classification: every query the
// generator emits carries the nesting profile it was built to have (its
// Want list), and Profile must reproduce it exactly — the type-J/JA
// boundaries (correlated vs not, aggregate vs not) and the preorder of
// multi-level correlation included. A drift on either side would silently
// weaken the fuzzer (queries exercising different strategies than the run
// statistics claim).
func TestMetamorphGeneratorShapes(t *testing.T) {
	covered := map[classify.NestType]int{}
	multiLevel := 0
	for _, seed := range []int64{1, 20260808} {
		gen := metamorph.NewGenerator(metamorph.Config{Seed: seed, Scenarios: 4})
		for id := 0; id < gen.Scenarios(); id++ {
			s := gen.Scenario(id)
			cat, err := s.Catalog()
			if err != nil {
				t.Fatal(err)
			}
			for _, pair := range s.Pairs {
				for qi, q := range pair.Queries {
					qb, err := sqlparser.Parse(q.SQL)
					if err != nil {
						t.Fatalf("seed %d pair %d Q%d does not parse: %v\n%s", seed, pair.ID, qi, err, q.SQL)
					}
					if _, err := schema.Resolve(cat, qb); err != nil {
						t.Fatalf("seed %d pair %d Q%d does not resolve: %v\n%s", seed, pair.ID, qi, err, q.SQL)
					}
					prof := classify.Profile(qb)
					if !equalTypes(prof.Types, q.Want) {
						t.Errorf("seed %d pair %d (%s) Q%d classified %v, generator built %v\n%s",
							seed, pair.ID, pair.Class, qi, prof.Types, q.Want, q.SQL)
					}
					for _, ty := range prof.Types {
						covered[ty]++
					}
					if len(prof.Types) > 1 {
						multiLevel++
					}
				}
			}
		}
	}
	// The generator must keep exercising all four types and multi-level
	// correlation, or the fuzzer's strategy coverage quietly shrinks.
	for _, ty := range []classify.NestType{classify.TypeA, classify.TypeN, classify.TypeJ, classify.TypeJA} {
		if covered[ty] == 0 {
			t.Errorf("generator produced no %s predicates", ty)
		}
	}
	if multiLevel == 0 {
		t.Error("generator produced no multi-level nesting")
	}
	t.Logf("classified coverage: %v, multi-level queries: %d", covered, multiLevel)
}

func equalTypes(a, b []classify.NestType) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
