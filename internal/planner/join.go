package planner

import (
	"repro/internal/ast"
	"repro/internal/costmodel"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/value"
)

// join combines the current subtree with the next FROM entry, choosing the
// join method by forced option or by cost.
func (p *Planner) join(cur, right input, tr ast.TableRef, conjs []ast.Predicate, used []bool, force JoinMethod, label string) (input, error) {
	// Restrict the right side first: for the outer joins of NEST-JA2 this
	// ordering is a correctness requirement, not an optimization —
	// section 5.2: "the condition which applies to only one relation ...
	// must be applied before the join is performed".
	right, err := p.applyLocal(right, conjs, used)
	if err != nil {
		return input{}, err
	}

	combined := cur.op.Schema().Concat(right.op.Schema())
	var joinConjs []ast.Predicate
	outer := false
	for i, c := range conjs {
		if used[i] || !predCompilable(c, combined) {
			continue
		}
		joinConjs = append(joinConjs, c)
		used[i] = true
		if hasOuterFlag(c) {
			outer = true
		}
	}
	if len(joinConjs) == 0 {
		// Cartesian product: only nested loops applies.
		return p.nlJoin(cur, right, tr, nil, false, label)
	}

	// A merge join needs a single equality conjunct relating the two
	// sides (extra equality conjuncts can post-filter an inner join, but
	// an outer join's match condition must be evaluated in one place).
	lkey, rkey, nullEq, rest := p.mergeKeys(cur, right, joinConjs, outer)
	canMerge := lkey >= 0 && (!outer || len(rest) == 0)

	// A parallel hash join has the same applicability shape as a merge
	// join (one equality key; an outer join's condition evaluated in one
	// place). It is considered only under JoinAuto — a forced method
	// reproduces the paper's sequential experiments exactly.
	if force == JoinAuto && canMerge && p.parallelOK(cur.tuples+right.tuples) {
		return p.parallelHashJoin(cur, right, lkey, rkey, nullEq, rest, outer, label)
	}

	method := force
	if method == JoinAuto {
		method = p.chooseMethod(cur, right)
	}
	if method == JoinMerge && !canMerge {
		p.notef("%s: merge join not applicable to %s; using nested loops", label, predsText(joinConjs))
		method = JoinNL
	}
	if method == JoinMerge {
		return p.mergeJoin(cur, right, tr, lkey, rkey, nullEq, rest, outer, label)
	}
	return p.nlJoin(cur, right, tr, joinConjs, outer, label)
}

// mergeKeys picks the equality conjunct to use as the merge key, returning
// the key positions, whether the key comparison is NULL-safe (OpEqNull, the
// NEST-JA2 back-join), and the remaining conjuncts. Among the candidates it
// prefers a key that matches an input's existing sort order, which both
// elides a sort and realizes the section 7.4 plan (joining the grouped
// temp table on its join column rather than on the scalar aggregate
// comparison).
func (p *Planner) mergeKeys(cur, right input, joinConjs []ast.Predicate, outer bool) (lkey, rkey int, nullEq bool, rest []ast.Predicate) {
	type candidate struct {
		idx        int
		lkey, rkey int
		nullEq     bool
		score      int
	}
	var candidates []candidate
	for i, c := range joinConjs {
		cmp, ok := c.(*ast.Comparison)
		if !ok || (cmp.Op != value.OpEq && cmp.Op != value.OpEqNull) {
			continue
		}
		lc, lok := cmp.Left.(ast.ColumnRef)
		rc, rok := cmp.Right.(ast.ColumnRef)
		if !lok || !rok {
			continue
		}
		li, ri := cur.op.Schema().Index(lc), right.op.Schema().Index(rc)
		if li < 0 || ri < 0 {
			li, ri = cur.op.Schema().Index(rc), right.op.Schema().Index(lc)
		}
		if li < 0 || ri < 0 {
			continue
		}
		score := 0
		if ri == right.sortedOn {
			score += 2
		}
		if li == cur.sortedOn {
			score++
		}
		candidates = append(candidates, candidate{idx: i, lkey: li, rkey: ri, nullEq: cmp.Op == value.OpEqNull, score: score})
	}
	best := -1
	for i, c := range candidates {
		if best < 0 || c.score > candidates[best].score {
			best = i
		}
	}
	lkey, rkey = -1, -1
	chosen := -1
	if best >= 0 {
		lkey, rkey, nullEq, chosen = candidates[best].lkey, candidates[best].rkey, candidates[best].nullEq, candidates[best].idx
	}
	for i, c := range joinConjs {
		if i != chosen {
			rest = append(rest, c)
		}
	}
	return lkey, rkey, nullEq, rest
}

// parallelOK reports whether a parallel operator over an input of the
// given estimated cardinality should be used: parallelism must be enabled
// and the input large enough to amortize the per-worker setup cost (or the
// gate overridden for tests).
func (p *Planner) parallelOK(tuples float64) bool {
	w := p.opts.workers()
	if w <= 1 {
		return false
	}
	return p.opts.ForceParallel || costmodel.ParallelWorthwhile(tuples, w)
}

// parallelHashJoin builds a hash join partitioned across workers behind an
// ExchangeMerge. Workers interleave nondeterministically, so the result
// reports no sort order: GROUP BY, DISTINCT, merge joins, and ORDER BY
// above it keep their sorts (no section 7.4 elision applies).
func (p *Planner) parallelHashJoin(cur, right input, lkey, rkey int, nullEq bool, rest []ast.Predicate, outer bool, label string) (input, error) {
	w := p.opts.workers()
	src := &exec.ParallelHashJoin{
		Left:     cur.op,
		Right:    right.op,
		LeftKey:  lkey,
		RightKey: rkey,
		Outer:    outer,
		NullEq:   nullEq,
		Workers:  w,
		QC:       p.opts.QC,
		Spill:    p.opts.Spill,
	}
	kind := "parallel hash join"
	if outer {
		kind = "outer parallel hash join"
	}
	p.notef("%s: %s %s with %s (%d workers)", label, kind, cur.op.Schema()[lkey], right.op.Schema()[rkey], w)
	var op exec.Operator = &exec.ExchangeMerge{Source: src, QC: p.opts.QC}
	if len(rest) > 0 {
		pred, err := exec.CompileConjuncts(rest, op.Schema())
		if err != nil {
			return input{}, err
		}
		op = &exec.Filter{Child: op, Pred: pred}
	}
	return input{
		op:       op,
		pages:    cur.pages + right.pages,
		tuples:   p.keyCardinality(cur, right, lkey, rkey),
		sortedOn: -1, // exchange output order is nondeterministic
	}, nil
}

// chooseMethod estimates both join methods with the section 7 cost model
// and picks the cheaper, as the optimizer the paper defers to would.
func (p *Planner) chooseMethod(cur, right input) JoinMethod {
	b := p.store.BufferPages()
	mergeCost := cur.pages + right.pages + costmodel.SortCost(right.pages, b)
	if cur.sortedOn < 0 {
		mergeCost += costmodel.SortCost(cur.pages, b)
	}
	nlCost := cur.pages + right.pages
	if right.pages > float64(b-1) {
		nlCost = cur.pages + cur.tuples*right.pages
	}
	if nlCost <= mergeCost {
		return JoinNL
	}
	return JoinMerge
}

// mergeJoin builds a sort-merge join, eliminating sorts on inputs already
// in key order (the section 7.4 optimizations).
func (p *Planner) mergeJoin(cur, right input, tr ast.TableRef, lkey, rkey int, nullEq bool, rest []ast.Predicate, outer bool, label string) (input, error) {
	b := p.store.BufferPages()
	left := cur.op
	if cur.sortedOn != lkey {
		left = &exec.Sort{Child: left, Keys: []int{lkey}, Store: p.store, TuplesPerPage: p.opts.TempTuplesPerPage, QC: p.opts.QC, Spill: p.opts.Spill}
		p.notef("%s: sort left input on %s", label, cur.op.Schema()[lkey])
	} else {
		p.notef("%s: left input already in join-column order, sort elided", label)
	}
	rightOp := right.op
	if right.sortedOn != rkey {
		rightOp = &exec.Sort{Child: rightOp, Keys: []int{rkey}, Store: p.store, TuplesPerPage: p.opts.TempTuplesPerPage, QC: p.opts.QC, Spill: p.opts.Spill}
		p.notef("%s: sort right input on %s", label, right.op.Schema()[rkey])
	} else {
		p.notef("%s: right input already in join-column order, sort elided", label)
	}
	kind := "merge join"
	if outer {
		kind = "outer merge join"
	}
	p.notef("%s: %s %s with %s (B=%d)", label, kind, cur.op.Schema()[lkey], right.op.Schema()[rkey], b)
	var op exec.Operator = &exec.MergeJoin{Left: left, Right: rightOp, LeftKey: lkey, RightKey: rkey, Outer: outer, NullEq: nullEq, QC: p.opts.QC, Spill: p.opts.Spill}
	if len(rest) > 0 {
		pred, err := exec.CompileConjuncts(rest, op.Schema())
		if err != nil {
			return input{}, err
		}
		op = &exec.Filter{Child: op, Pred: pred}
	}
	return input{
		op:       op,
		pages:    cur.pages + right.pages,
		tuples:   p.keyCardinality(cur, right, lkey, rkey),
		sortedOn: lkey,
	}, nil
}

// keyCardinality estimates a merge join's output size from the key
// columns' distinct-value statistics.
func (p *Planner) keyCardinality(cur, right input, lkey, rkey int) float64 {
	if p.opts.Stats == nil {
		return maxf(cur.tuples, right.tuples)
	}
	lc, rc := cur.op.Schema()[lkey], right.op.Schema()[rkey]
	dl := p.opts.Stats.DistinctValues(ast.ColumnRef{Table: lc.Table, Column: lc.Column}, p.curFrom)
	dr := p.opts.Stats.DistinctValues(ast.ColumnRef{Table: rc.Table, Column: rc.Column}, p.curFrom)
	return stats.JoinCardinality(cur.tuples, right.tuples, dl, dr)
}

// joinCardinality estimates the joined row count: with statistics, the
// System R formula n_l·n_r / max(distinct); without, the larger input.
func (p *Planner) joinCardinality(cur, right input, conjs []ast.Predicate) float64 {
	if p.opts.Stats == nil {
		return maxf(cur.tuples, right.tuples)
	}
	for _, c := range conjs {
		cmp, ok := c.(*ast.Comparison)
		if !ok || (cmp.Op != value.OpEq && cmp.Op != value.OpEqNull) {
			continue
		}
		lc, lok := cmp.Left.(ast.ColumnRef)
		rc, rok := cmp.Right.(ast.ColumnRef)
		if !lok || !rok {
			continue
		}
		dl := p.opts.Stats.DistinctValues(lc, p.curFrom)
		dr := p.opts.Stats.DistinctValues(rc, p.curFrom)
		return stats.JoinCardinality(cur.tuples, right.tuples, dl, dr)
	}
	return maxf(cur.tuples, right.tuples)
}

// nlJoin builds a nested-loops join; the right side must be a stored file
// (a bare scan serves directly, anything else is materialized first,
// which also enforces restriction-before-join for outer joins).
func (p *Planner) nlJoin(cur, right input, tr ast.TableRef, joinConjs []ast.Predicate, outer bool, label string) (input, error) {
	var file *storage.HeapFile
	if scan, ok := right.op.(*exec.SeqScan); ok {
		file = scan.File
	} else {
		f, err := exec.MaterializeBudget(right.op, p.store, p.opts.TempTuplesPerPage, p.opts.QC)
		if err != nil {
			return input{}, err
		}
		p.dropLater = append(p.dropLater, f.Name())
		file = f
		p.notef("%s: right side restricted and materialized (%d pages)", label, file.NumPages())
	}
	combined := cur.op.Schema().Concat(right.op.Schema())
	pred, err := exec.CompileConjuncts(stripOuterFlags(joinConjs), combined)
	if err != nil {
		return input{}, err
	}
	kind := "nested-loops join"
	if outer {
		kind = "outer nested-loops join"
	}
	p.notef("%s: %s on %s", label, kind, predsText(joinConjs))
	op := &exec.NestedLoopJoin{
		Left:     cur.op,
		Right:    file,
		RightSch: right.op.Schema(),
		Pred:     pred,
		Outer:    outer,
		QC:       p.opts.QC,
	}
	return input{
		op:       op,
		pages:    cur.pages + right.pages,
		tuples:   p.joinCardinality(cur, right, joinConjs),
		sortedOn: cur.sortedOn, // nested loops preserves left order
	}, nil
}

// stripOuterFlags clones comparisons without their outer-join marker so
// they compile as ordinary match conditions; the join operator itself
// implements the preservation semantics.
func stripOuterFlags(preds []ast.Predicate) []ast.Predicate {
	out := make([]ast.Predicate, len(preds))
	for i, p := range preds {
		if cmp, ok := p.(*ast.Comparison); ok && cmp.LeftOuter {
			c := *cmp
			c.LeftOuter = false
			out[i] = &c
			continue
		}
		out[i] = p
	}
	return out
}

func predsText(ps []ast.Predicate) string {
	if len(ps) == 0 {
		return "(cartesian)"
	}
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += " AND "
		}
		s += p.String()
	}
	return s
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
