package planner

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

// finish applies grouping or projection and DISTINCT to a joined subtree,
// tracking the output ordering so later steps can elide sorts (section
// 7.4: the temp table is created in GROUP BY order, which is its join
// column order).
func (p *Planner) finish(cur input, qb *ast.QueryBlock, label string) (input, error) {
	out, err := p.finishShape(cur, qb, label)
	if err != nil {
		return input{}, err
	}
	if len(qb.OrderBy) > 0 {
		keys := make([]int, len(qb.OrderBy))
		desc := make([]bool, len(qb.OrderBy))
		for i, o := range qb.OrderBy {
			keys[i], desc[i] = o.Pos, o.Desc
		}
		out.op = &exec.Sort{Child: out.op, Keys: keys, Desc: desc, Store: p.store, TuplesPerPage: p.opts.TempTuplesPerPage, QC: p.opts.QC, Spill: p.opts.Spill}
		out.sortedOn = -1
		if !desc[0] {
			out.sortedOn = keys[0]
		}
		p.notef("%s: ORDER BY sort over %d key(s)", label, len(keys))
	}
	return out, nil
}

func (p *Planner) finishShape(cur input, qb *ast.QueryBlock, label string) (input, error) {
	if qb.HasAggregate() {
		return p.finishGroup(cur, qb, label)
	}
	sch := cur.op.Schema()
	cols := make([]int, len(qb.Select))
	names := make([]exec.ColID, len(qb.Select))
	for i, item := range qb.Select {
		idx := sch.Index(item.Col)
		if idx < 0 {
			return input{}, fmt.Errorf("planner: select column %s not produced by plan", item.Col)
		}
		cols[i] = idx
		if item.As != "" {
			names[i] = exec.ColID{Column: item.As}
		}
	}
	out := cur
	out.op = exec.NewProject(cur.op, cols, names)
	out.sortedOn = -1
	for i, c := range cols {
		if c == cur.sortedOn {
			out.sortedOn = i
			break
		}
	}
	if qb.Distinct {
		// Duplicate elimination by (B−1)-way merge sort over all output
		// columns, as in section 7.1; the result emerges in join-column
		// (first-column) order.
		keys := make([]int, len(qb.Select))
		for i := range keys {
			keys[i] = i
		}
		srt := &exec.Sort{Child: out.op, Keys: keys, Store: p.store, TuplesPerPage: p.opts.TempTuplesPerPage, QC: p.opts.QC, Spill: p.opts.Spill}
		out.op = &exec.Distinct{Child: srt}
		out.sortedOn = 0
		p.notef("%s: duplicates removed by sort over %d column(s)", label, len(keys))
	}
	return out, nil
}

// finishGroup builds the GROUP BY aggregation. The input must arrive in
// group-key order; a merge join keyed on the grouping column already
// provides it, otherwise a sort is inserted.
func (p *Planner) finishGroup(cur input, qb *ast.QueryBlock, label string) (input, error) {
	sch := cur.op.Schema()
	groupCols := make([]int, len(qb.GroupBy))
	for i, g := range qb.GroupBy {
		idx := sch.Index(g)
		if idx < 0 {
			return input{}, fmt.Errorf("planner: GROUP BY column %s not produced by plan", g)
		}
		groupCols[i] = idx
	}
	// A parallel hash aggregation needs no GROUP BY sort at all: the
	// distributor partitions rows by the full group key, so each group is
	// aggregated on exactly one worker. It only applies to real grouping
	// (a global aggregate has one group and cannot be partitioned) and its
	// output order is nondeterministic.
	parallelGroup := len(groupCols) > 0 && p.parallelOK(cur.tuples) &&
		!(len(groupCols) == 1 && cur.sortedOn == groupCols[0])
	op := cur.op
	if len(groupCols) > 0 && !parallelGroup {
		if len(groupCols) == 1 && cur.sortedOn == groupCols[0] {
			p.notef("%s: input already in GROUP BY order, sort elided", label)
		} else {
			op = &exec.Sort{Child: op, Keys: groupCols, Store: p.store, TuplesPerPage: p.opts.TempTuplesPerPage, QC: p.opts.QC, Spill: p.opts.Spill}
			p.notef("%s: sort for GROUP BY", label)
		}
	}
	items := make([]exec.GroupItem, len(qb.Select))
	sortedOut := -1
	for i, sel := range qb.Select {
		out := exec.ColID{Column: sel.OutputName()}
		if sel.Agg == value.AggNone {
			idx := sch.Index(sel.Col)
			if idx < 0 {
				return input{}, fmt.Errorf("planner: select column %s not produced by plan", sel.Col)
			}
			items[i] = exec.GroupItem{Agg: value.AggNone, Col: idx, Out: out}
			if len(groupCols) > 0 && idx == groupCols[0] {
				sortedOut = i
			}
			continue
		}
		idx := -1
		if sel.Agg != value.AggCountStar {
			idx = sch.Index(sel.Col)
			if idx < 0 {
				return input{}, fmt.Errorf("planner: aggregate argument %s not produced by plan", sel.Col)
			}
		}
		items[i] = exec.GroupItem{Agg: sel.Agg, Col: idx, Out: out}
	}
	var out exec.Operator
	if parallelGroup {
		w := p.opts.workers()
		out = &exec.ExchangeMerge{Source: &exec.ParallelHashGroup{
			Child:     op,
			GroupCols: groupCols,
			Items:     items,
			Workers:   w,
			QC:        p.opts.QC,
			Spill:     p.opts.Spill,
		}, QC: p.opts.QC}
		sortedOut = -1 // worker output interleaves nondeterministically
		p.notef("%s: parallel hash aggregation over %d group column(s) (%d workers)", label, len(groupCols), w)
	} else {
		out = &exec.GroupAgg{Child: op, GroupCols: groupCols, Items: items, QC: p.opts.QC}
	}
	if len(qb.Having) > 0 {
		having := append([]ast.HavingPred(nil), qb.Having...)
		out = &exec.Filter{Child: out, Pred: func(t storage.Tuple) (value.Tri, error) {
			res := value.True
			for _, h := range having {
				tri, err := h.Op.Apply(t[h.Pos], h.Val)
				if err != nil {
					return value.Unknown, err
				}
				res = res.And(tri)
			}
			return res, nil
		}}
		p.notef("%s: HAVING filter over %d conjunct(s)", label, len(having))
	}
	return input{
		op:       out,
		pages:    cur.pages,
		tuples:   cur.tuples,
		sortedOn: sortedOut,
	}, nil
}
