// Package planner compiles a transformed (canonical) query — temporary
// table definitions plus a flat final query — into physical operator trees
// and executes them.
//
// It is a miniature of the System R optimizer the paper delegates to
// ([SEL 79]): for every two-input join it estimates the cost of a
// sort-merge join and of a nested-loops join with the cost model of
// section 7 and picks the cheaper, or honors a forced method so the
// experiments can reproduce all four combinations of section 7.4. It also
// implements that section's ordering optimizations: a projection created
// DISTINCT is already in join-column order, a merge-join result is already
// in GROUP BY order, and a temp table grouped on its join column needs no
// sort before the final merge join.
package planner

import (
	"fmt"
	"runtime"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/qctx"
	"repro/internal/schema"
	"repro/internal/spill"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/value"
)

// JoinMethod selects how a join is executed.
type JoinMethod uint8

// Join method choices. Auto picks by estimated cost.
const (
	JoinAuto JoinMethod = iota
	JoinMerge
	JoinNL
)

// String names the method.
func (m JoinMethod) String() string {
	switch m {
	case JoinMerge:
		return "merge"
	case JoinNL:
		return "nested-loops"
	default:
		return "auto"
	}
}

// Options control planning.
type Options struct {
	// TempJoin forces the join method inside temporary-table creation;
	// FinalJoin forces it for the final query's joins. JoinAuto (zero
	// value) chooses by cost. Forcing reproduces the four section 7.4
	// combinations.
	TempJoin, FinalJoin JoinMethod
	// TempTuplesPerPage sizes temp-table pages (0 = storage default).
	TempTuplesPerPage int
	// KeepTemps leaves the named temporary tables in the catalog and
	// store after Run so a harness can inspect them (as the paper prints
	// TEMP1/TEMP2/TEMP3 contents); call DropTemps when done.
	KeepTemps bool
	// Stats, when set, provides System R selectivity estimation for the
	// cost-based join choice ([SEL 79]); without it the planner uses raw
	// relation sizes.
	Stats *stats.Stats
	// Indexes, when set, lets the planner replace a sequential scan with
	// an index scan for selective single-column restrictions.
	Indexes *index.Registry
	// Parallelism enables the morsel-driven parallel operators: 0 or 1
	// keeps every plan sequential, n > 1 uses n workers, and a negative
	// value uses one worker per CPU. Parallel plans produce rows in
	// nondeterministic order, so the planner treats exchange output as
	// unsorted (no section 7.4 elisions above it).
	Parallelism int
	// ForceParallel bypasses the cost-model gate so even small inputs run
	// parallel plans — used by tests and the differential oracle to
	// exercise the parallel operators on tiny generated databases.
	ForceParallel bool
	// QC, when set, threads lifecycle governance (cancellation, deadline,
	// row and memory budgets) into every operator the planner builds.
	QC *qctx.QueryContext
	// Spill, when set, gives every buffering operator the planner builds
	// (sorts, hash builds, aggregations, merge-join groups) a per-query
	// spill session: a refused memory reservation degrades to run files
	// on disk instead of failing with ErrMemoryBudget.
	Spill *spill.Session
	// TempSuffix namespaces the physical names of this query's temporary
	// tables in the shared store and catalog (TEMP1 → TEMP1<suffix>), so
	// concurrent queries materializing the same logical TEMPn cannot
	// collide. Plan notes and EXPLAIN keep the logical names. Empty means
	// no namespacing (single-query tools, paper experiments).
	TempSuffix string
	// Sink, when set, streams the final query's rows in batches of
	// SinkBatchRows instead of materializing them: Run returns nil rows
	// and the sink's blocking becomes executor backpressure. Temporary
	// tables are still materialized — only the final pipeline streams.
	Sink exec.BatchSink
	// SinkBatchRows sizes Sink batches (0 = exec.DefaultBatchRows).
	SinkBatchRows int
}

// workers resolves the Parallelism option to a worker count; values <= 1
// disable parallel plans.
func (o Options) workers() int {
	if o.Parallelism < 0 {
		return runtime.NumCPU()
	}
	return o.Parallelism
}

// Planner plans and executes one transformed query. Single-use.
type Planner struct {
	cat   *schema.Catalog
	store *storage.Store
	opts  Options

	notes     []string
	tempNames []string          // physical temp-table names (catalog + store)
	dropLater []string          // anonymous materializations
	tempOrder map[string]string // logical temp name -> column it is sorted on
	physNames map[string]string // logical temp name (upper) -> physical name
	curFrom   []ast.TableRef    // FROM clause of the block being planned
}

// New creates a planner.
func New(cat *schema.Catalog, store *storage.Store, opts Options) *Planner {
	return &Planner{
		cat: cat, store: store, opts: opts,
		tempOrder: make(map[string]string),
		physNames: make(map[string]string),
	}
}

// physName maps a relation reference to its physical name: temporary
// tables materialized by this planner live under suffixed names when
// Options.TempSuffix is set; everything else resolves as written.
func (p *Planner) physName(name string) string {
	if phys, ok := p.physNames[upperName(name)]; ok {
		return phys
	}
	return name
}

func upperName(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'a' && c <= 'z' {
			b[i] = c - ('a' - 'A')
		}
	}
	return string(b)
}

// Notes returns the plan decisions (join methods, sort eliminations) in
// execution order, for EXPLAIN.
func (p *Planner) Notes() []string { return p.notes }

func (p *Planner) notef(format string, args ...any) {
	p.notes = append(p.notes, fmt.Sprintf(format, args...))
}

// Run materializes the temporary tables in order and evaluates the final
// query, returning its rows and schema. Temporary tables are dropped
// before returning.
func (p *Planner) Run(res *transform.Result) (rows []storage.Tuple, sch exec.RowSchema, err error) {
	defer p.cleanup()
	for _, temp := range res.Temps {
		if err := p.buildTemp(temp); err != nil {
			return nil, nil, err
		}
	}
	final, err := p.planBlock(res.Query, p.opts.FinalJoin, "final")
	if err != nil {
		return nil, nil, err
	}
	p.notef("final plan:\n%s", exec.Describe(final.op))
	if p.opts.Sink != nil {
		if _, err := exec.DrainInto(final.op, p.opts.QC, p.opts.SinkBatchRows, p.opts.Sink); err != nil {
			return nil, nil, err
		}
		return nil, final.op.Schema(), nil
	}
	rows, err = exec.DrainBudget(final.op, p.opts.QC)
	if err != nil {
		return nil, nil, err
	}
	return rows, final.op.Schema(), nil
}

func (p *Planner) cleanup() {
	if !p.opts.KeepTemps {
		p.DropTemps()
	}
	for _, name := range p.dropLater {
		p.store.Drop(name)
	}
	p.dropLater = nil
}

// DropTemps removes the named temporary tables kept by KeepTemps.
func (p *Planner) DropTemps() {
	for _, name := range p.tempNames {
		p.store.Drop(name)
		p.cat.Drop(name)
	}
	p.tempNames = nil
}

// buildTemp plans a temp definition, materializes it under its name, and
// registers its schema so later definitions and the final query resolve.
func (p *Planner) buildTemp(temp transform.TempTable) error {
	plan, err := p.planBlock(temp.Def, p.opts.TempJoin, temp.Name)
	if err != nil {
		return err
	}
	phys := temp.Name + p.opts.TempSuffix
	file, err := p.store.Create(phys, p.opts.TempTuplesPerPage)
	if err != nil {
		return fmt.Errorf("planner: temp %s: %w", temp.Name, err)
	}
	p.tempNames = append(p.tempNames, phys)
	p.physNames[upperName(temp.Name)] = phys
	rel := temp.Rel
	if phys != temp.Name {
		// Register the suffixed clone; the transform result keeps the
		// logical relation so query text and notes stay readable.
		clone := *temp.Rel
		clone.Name = phys
		rel = &clone
	}
	if err := p.cat.Define(rel); err != nil {
		return fmt.Errorf("planner: temp %s: %w", temp.Name, err)
	}
	p.notef("%s plan:\n%s", temp.Name, exec.Describe(plan.op))
	if err := exec.MaterializeIntoBudget(plan.op, file, p.opts.QC); err != nil {
		return err
	}
	if plan.sortedOn >= 0 && plan.sortedOn < len(temp.Rel.Columns) {
		// The temp is stored in this column's order (section 7.4's sort
		// eliminations carry across materialization).
		p.tempOrder[temp.Name] = temp.Rel.Columns[plan.sortedOn].Name
	}
	p.notef("%s materialized: %d tuples, %d pages", temp.Name, file.NumTuples(), file.NumPages())
	return nil
}

// input tracks a planned subtree with its cost-model statistics.
type input struct {
	op     exec.Operator
	pages  float64
	tuples float64
	// sortedOn is the column position the stream is known to be ordered
	// by (-1 when unknown), enabling the section 7.4 sort eliminations.
	sortedOn int
}

// planBlock compiles one canonical query block (no nesting except
// constant type-A subqueries, which are evaluated here).
func (p *Planner) planBlock(qb *ast.QueryBlock, force JoinMethod, label string) (input, error) {
	if err := p.foldConstantSubqueries(qb); err != nil {
		return input{}, err
	}

	conjs := append([]ast.Predicate(nil), qb.Where...)
	used := make([]bool, len(conjs))
	p.curFrom = qb.From

	cur, err := p.accessPath(qb.From[0], conjs, used, label)
	if err != nil {
		return input{}, err
	}
	cur, err = p.applyLocal(cur, conjs, used)
	if err != nil {
		return input{}, err
	}

	for _, tr := range qb.From[1:] {
		right, err := p.accessPath(tr, conjs, used, label)
		if err != nil {
			return input{}, err
		}
		cur, err = p.join(cur, right, tr, conjs, used, force, label)
		if err != nil {
			return input{}, err
		}
		cur, err = p.applyLocal(cur, conjs, used)
		if err != nil {
			return input{}, err
		}
	}
	for i, c := range conjs {
		if used[i] {
			continue
		}
		if ip, ok := c.(*ast.InPred); ok && ip.Negated {
			cur, err = p.antiJoin(cur, ip, qb.From, label)
			if err != nil {
				return input{}, err
			}
			used[i] = true
			continue
		}
		return input{}, fmt.Errorf("planner: conjunct %s references no plannable input", c)
	}
	return p.finish(cur, qb, label)
}

// foldConstantSubqueries replaces uncorrelated scalar subqueries (type-A
// remnants) with their value, evaluated once by nested iteration — the
// System R treatment of type-A nesting.
func (p *Planner) foldConstantSubqueries(qb *ast.QueryBlock) error {
	var ev *exec.Evaluator
	for _, conj := range qb.Where {
		cmp, ok := conj.(*ast.Comparison)
		if !ok {
			continue
		}
		for _, side := range []*ast.Expr{&cmp.Left, &cmp.Right} {
			sq, ok := (*side).(*ast.Subquery)
			if !ok {
				continue
			}
			if ast.IsCorrelated(sq.Block) {
				return fmt.Errorf("planner: residual correlated subquery %s", sq)
			}
			if ev == nil {
				ev = exec.NewEvaluator(p.cat, p.store)
				ev.MapName = p.physName
				defer ev.Close()
			}
			rows, _, err := ev.EvalQuery(sq.Block)
			if err != nil {
				return err
			}
			v := value.Null
			switch len(rows) {
			case 0:
			case 1:
				v = rows[0][0]
			default:
				return fmt.Errorf("planner: constant subquery returned %d rows", len(rows))
			}
			*side = ast.Const{Val: v}
			p.notef("type-A subquery evaluated to constant %s", v)
		}
	}
	return nil
}

// accessPath chooses between a sequential scan and an index scan for one
// FROM entry. An index scan is picked when an unused conjunct restricts an
// indexed column of this table with a supported operator and the covered
// index pages plus the matching base pages cost clearly less than a full
// scan; the conjunct is then consumed by the access path.
func (p *Planner) accessPath(tr ast.TableRef, conjs []ast.Predicate, used []bool, label string) (input, error) {
	seq, err := p.scanInput(tr)
	if err != nil {
		return input{}, err
	}
	if p.opts.Indexes == nil {
		return seq, nil
	}
	scan, ok := seq.op.(*exec.SeqScan)
	if !ok {
		return seq, nil
	}
	for i, c := range conjs {
		if used[i] {
			continue
		}
		col, op, key, ok := indexableConjunct(c, tr.Binding())
		if !ok {
			continue
		}
		idx := p.opts.Indexes.On(tr.Relation, col)
		if idx == nil {
			continue
		}
		matches, ok := idx.EstimateMatches(op, key)
		if !ok {
			continue
		}
		idxCost := float64(1 + matches/max(1, scan.File.TuplesPerPage()*4) + min(matches, scan.File.NumPages()))
		if idxCost >= 0.8*seq.pages {
			continue
		}
		used[i] = true
		p.notef("%s: index scan on %s.%s (%s %s, ~%d matches)",
			label, tr.Relation, col, op, key, matches)
		rel, _ := p.cat.Lookup(tr.Relation)
		sortedOn := rel.ColumnIndex(col)
		return input{
			op:       &exec.IndexScan{Idx: idx, Sch: scan.Schema(), Op: op, Key: key},
			pages:    idxCost,
			tuples:   float64(matches),
			sortedOn: sortedOn,
		}, nil
	}
	return seq, nil
}

// indexableConjunct recognizes `binding.col op const` (either orientation)
// for operators an index supports.
func indexableConjunct(c ast.Predicate, binding string) (col string, op value.CompareOp, key value.Value, ok bool) {
	cmp, isCmp := c.(*ast.Comparison)
	if !isCmp || cmp.LeftOuter || cmp.Op == value.OpNe {
		return "", 0, value.Null, false
	}
	if lc, lok := cmp.Left.(ast.ColumnRef); lok {
		if k, kok := cmp.Right.(ast.Const); kok && eqFold(lc.Table, binding) {
			return lc.Column, cmp.Op, k.Val, true
		}
	}
	if rc, rok := cmp.Right.(ast.ColumnRef); rok {
		if k, kok := cmp.Left.(ast.Const); kok && eqFold(rc.Table, binding) {
			return rc.Column, cmp.Op.Flip(), k.Val, true
		}
	}
	return "", 0, value.Null, false
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'a' && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if cb >= 'a' && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// scanInput builds a sequential scan of one FROM entry. Temp-table
// references resolve through the logical→physical name map so concurrent
// queries read their own materializations.
func (p *Planner) scanInput(tr ast.TableRef) (input, error) {
	name := p.physName(tr.Relation)
	rel, ok := p.cat.Lookup(name)
	if !ok {
		return input{}, fmt.Errorf("planner: unknown relation %s", tr.Relation)
	}
	file, ok := p.store.Lookup(name)
	if !ok {
		return input{}, fmt.Errorf("planner: no stored relation %s", tr.Relation)
	}
	cols := make([]string, len(rel.Columns))
	for i, c := range rel.Columns {
		cols[i] = c.Name
	}
	scan := exec.NewSeqScan(file, tr.Binding(), cols)
	scan.QC = p.opts.QC
	sortedOn := -1
	if col, ok := p.tempOrder[tr.Relation]; ok {
		sortedOn = rel.ColumnIndex(col)
	}
	return input{
		op:       scan,
		pages:    float64(file.NumPages()),
		tuples:   float64(file.NumTuples()),
		sortedOn: sortedOn,
	}, nil
}

// applyLocal attaches every still-unused conjunct evaluable over the
// current schema as a filter.
func (p *Planner) applyLocal(in input, conjs []ast.Predicate, used []bool) (input, error) {
	var local []ast.Predicate
	for i, c := range conjs {
		if used[i] || hasOuterFlag(c) {
			continue
		}
		if predCompilable(c, in.op.Schema()) {
			local = append(local, c)
			used[i] = true
		}
	}
	if len(local) == 0 {
		return in, nil
	}
	pred, err := exec.CompileConjuncts(local, in.op.Schema())
	if err != nil {
		return input{}, err
	}
	in.op = &exec.Filter{Child: in.op, Pred: pred}
	if p.opts.Stats != nil {
		sel := 1.0
		for _, c := range local {
			sel *= p.opts.Stats.Selectivity(c, p.curFrom)
		}
		in.tuples *= sel
		if in.pages = in.pages * sel; in.pages < 1 {
			in.pages = 1
		}
	}
	return in, nil
}

func hasOuterFlag(p ast.Predicate) bool {
	cmp, ok := p.(*ast.Comparison)
	return ok && cmp.LeftOuter
}

// predCompilable reports whether every column the predicate references is
// available in the schema (and it contains no subquery).
func predCompilable(p ast.Predicate, sch exec.RowSchema) bool {
	if len(ast.SubqueriesOf(p)) > 0 {
		return false
	}
	holder := &ast.QueryBlock{Where: []ast.Predicate{p}}
	for _, ref := range holder.LocalColumnRefs() {
		if sch.Index(ref) < 0 {
			return false
		}
	}
	return true
}
