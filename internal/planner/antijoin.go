package planner

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/exec"
	"repro/internal/storage"
	"repro/internal/value"
)

// antiJoin compiles a retained NOT IN conjunct (the beyond-paper extension
// noted in the transformation trace) into a NULL-aware anti-join: the
// inner block's local predicates restrict a materialized right side, its
// correlated predicates become the relevance condition, and the membership
// column drives the three-valued NOT IN semantics.
func (p *Planner) antiJoin(cur input, ip *ast.InPred, outerFrom []ast.TableRef, label string) (input, error) {
	sub := ip.Sub
	if len(sub.Select) != 1 || sub.Select[0].IsAggregate() {
		return input{}, fmt.Errorf("planner: NOT IN inner block must select one plain column")
	}
	local := make(map[string]bool)
	for _, b := range sub.Bindings() {
		local[strings.ToUpper(b)] = true
	}
	isLocalPred := func(c ast.Predicate) bool {
		holder := &ast.QueryBlock{Where: []ast.Predicate{c}}
		for _, ref := range holder.LocalColumnRefs() {
			if ref.Table != "" && !local[strings.ToUpper(ref.Table)] {
				return false
			}
		}
		return len(ast.SubqueriesOf(c)) == 0
	}
	var localPreds, corrPreds []ast.Predicate
	for _, c := range sub.Where {
		if isLocalPred(c) {
			localPreds = append(localPreds, c)
		} else {
			corrPreds = append(corrPreds, c)
		}
	}

	// Project the membership column plus every local column the
	// correlation predicates need.
	needed := []ast.ColumnRef{sub.Select[0].Col}
	for _, c := range corrPreds {
		holder := &ast.QueryBlock{Where: []ast.Predicate{c}}
		for _, ref := range holder.LocalColumnRefs() {
			if local[strings.ToUpper(ref.Table)] {
				needed = append(needed, ref)
			}
		}
	}
	needed = dedupeRefs(needed)
	proj := &ast.QueryBlock{From: sub.From, Where: localPreds}
	for _, ref := range needed {
		proj.Select = append(proj.Select, ast.SelectItem{Col: ref})
	}

	savedFrom := p.curFrom
	right, err := p.planBlock(proj, JoinAuto, label+"-anti")
	p.curFrom = savedFrom
	if err != nil {
		return input{}, err
	}
	file, err := exec.MaterializeBudget(right.op, p.store, p.opts.TempTuplesPerPage, p.opts.QC)
	if err != nil {
		return input{}, err
	}
	p.dropLater = append(p.dropLater, file.Name())

	combined := cur.op.Schema().Concat(right.op.Schema())
	var corr exec.RowPred
	if len(corrPreds) > 0 {
		corr, err = exec.CompileConjuncts(corrPreds, combined)
		if err != nil {
			return input{}, err
		}
	}
	leftVal, err := compileLeftVal(ip.Left, cur.op.Schema())
	if err != nil {
		return input{}, err
	}
	p.notef("%s: NULL-aware anti-join (NOT IN) against %d-page inner", label, file.NumPages())
	return input{
		op: &exec.AntiJoin{
			Left:      cur.op,
			Right:     file,
			RightSch:  right.op.Schema(),
			Corr:      corr,
			LeftVal:   leftVal,
			MemberCol: 0, // the membership column is projected first
			QC:        p.opts.QC,
		},
		pages:    cur.pages + right.pages,
		tuples:   cur.tuples,
		sortedOn: cur.sortedOn, // anti-join preserves left order
	}, nil
}

func compileLeftVal(e ast.Expr, sch exec.RowSchema) (func(storage.Tuple) value.Value, error) {
	switch e := e.(type) {
	case ast.ColumnRef:
		i := sch.Index(e)
		if i < 0 {
			return nil, fmt.Errorf("planner: NOT IN operand %s not produced by plan", e)
		}
		return func(t storage.Tuple) value.Value { return t[i] }, nil
	case ast.Const:
		v := e.Val
		return func(storage.Tuple) value.Value { return v }, nil
	default:
		return nil, fmt.Errorf("planner: unsupported NOT IN operand %s", e)
	}
}

func dedupeRefs(refs []ast.ColumnRef) []ast.ColumnRef {
	seen := make(map[ast.ColumnRef]bool, len(refs))
	out := refs[:0:0]
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}
