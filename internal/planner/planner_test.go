package planner_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/value"
	"repro/internal/workload"
)

// runPlanned transforms a query and executes it through the planner.
func runPlanned(t *testing.T, db *workload.DB, sql string, variant transform.Variant, opts planner.Options) ([]storage.Tuple, *planner.Planner) {
	t.Helper()
	qb, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	res, err := transform.New(db.Cat, variant).Transform(qb)
	if err != nil {
		t.Fatal(err)
	}
	pl := planner.New(db.Cat, db.Store, opts)
	rows, _, err := pl.Run(res)
	if err != nil {
		t.Fatalf("plan/run: %v\nnotes: %v", err, pl.Notes())
	}
	return rows, pl
}

func rowStrs(rows []storage.Tuple) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return strings.Join(out, " ")
}

func kiessling(t *testing.T, b int) *workload.DB {
	t.Helper()
	db := workload.NewDB(b)
	if err := workload.LoadKiessling(db); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPlannerQ2AllJoinCombinations(t *testing.T) {
	methods := []planner.JoinMethod{planner.JoinAuto, planner.JoinMerge, planner.JoinNL}
	for _, temp := range methods {
		for _, final := range methods {
			db := kiessling(t, 8)
			rows, _ := runPlanned(t, db, workload.KiesslingQ2, transform.JA2,
				planner.Options{TempJoin: temp, FinalJoin: final})
			if got := rowStrs(rows); got != "(10) (8)" {
				t.Errorf("temp=%v final=%v rows = %v", temp, final, got)
			}
		}
	}
}

// The section 7.4 sort eliminations: with merge joins forced, TEMP1 is
// created in join-column order (DISTINCT sort), the outer-join result is
// in GROUP BY order, and the grouped temp table needs no sort before the
// final merge join.
func TestPlannerSortElisions(t *testing.T) {
	db := kiessling(t, 8)
	_, pl := runPlanned(t, db, workload.KiesslingQ2, transform.JA2,
		planner.Options{TempJoin: planner.JoinMerge, FinalJoin: planner.JoinMerge})
	notes := strings.Join(pl.Notes(), "\n")
	for _, frag := range []string{
		"duplicates removed by sort",                   // TEMP1 projection
		"left input already in join-column order",      // TEMP3: TEMP1 pre-sorted
		"input already in GROUP BY order, sort elided", // TEMP3: merge-join output order
		"right input already in join-column order",     // final: TEMP3 in join order
	} {
		if !strings.Contains(notes, frag) {
			t.Errorf("notes missing %q:\n%s", frag, notes)
		}
	}
}

// The non-equality temp join cannot use a merge join; a forced merge
// falls back to nested loops with a note.
func TestPlannerThetaJoinFallsBackToNL(t *testing.T) {
	db := workload.NewDB(8)
	if err := workload.LoadNonEquality(db); err != nil {
		t.Fatal(err)
	}
	rows, pl := runPlanned(t, db, workload.GanskiQ5, transform.JA2,
		planner.Options{TempJoin: planner.JoinMerge})
	if got := rowStrs(rows); got != "(8)" {
		t.Errorf("rows = %v", got)
	}
	if !strings.Contains(strings.Join(pl.Notes(), "\n"), "merge join not applicable") {
		t.Errorf("expected fallback note, got %v", pl.Notes())
	}
}

// Cost-based choice: a small right side that fits in the buffer pool
// favors nested loops; a large one favors merge join.
func TestPlannerAutoChoice(t *testing.T) {
	mk := func(innerTuples, b int) string {
		db := workload.NewDB(b)
		cols := []schema.Column{{Name: "JC", Type: value.KindInt}, {Name: "V", Type: value.KindInt}}
		outer := make([]storage.Tuple, 60)
		for k := range outer {
			outer[k] = storage.Tuple{value.NewInt(int64(k % 10)), value.NewInt(int64(k % 3))}
		}
		inner := make([]storage.Tuple, innerTuples)
		for k := range inner {
			inner[k] = storage.Tuple{value.NewInt(int64(k % 10)), value.NewInt(int64(k % 3))}
		}
		if err := db.Load(&schema.Relation{Name: "RI", Columns: cols}, 2, outer); err != nil {
			t.Fatal(err)
		}
		if err := db.Load(&schema.Relation{Name: "RJ", Columns: cols}, 2, inner); err != nil {
			t.Fatal(err)
		}
		_, pl := runPlanned(t, db,
			"SELECT JC FROM RI WHERE V = (SELECT COUNT(V) FROM RJ WHERE RJ.JC = RI.JC)",
			transform.JA2, planner.Options{})
		return strings.Join(pl.Notes(), "\n")
	}
	// Large inner, small pool: merge join chosen somewhere.
	if notes := mk(400, 4); !strings.Contains(notes, "merge join") {
		t.Errorf("large inner should use merge join:\n%s", notes)
	}
	// Tiny inner, large pool: nested loops is cheaper for the temp join.
	if notes := mk(4, 64); !strings.Contains(notes, "nested-loops join") {
		t.Errorf("small inner should use nested loops:\n%s", notes)
	}
}

// Type-A constants are folded before planning.
func TestPlannerFoldsTypeAConstants(t *testing.T) {
	db := workload.NewDB(8)
	if err := workload.LoadSuppliers(db); err != nil {
		t.Fatal(err)
	}
	rows, pl := runPlanned(t, db,
		"SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)",
		transform.JA2, planner.Options{})
	if got := rowStrs(rows); got != "('S1')" {
		t.Errorf("rows = %v", got)
	}
	if !strings.Contains(strings.Join(pl.Notes(), "\n"), "constant 'P6'") {
		t.Errorf("notes = %v", pl.Notes())
	}
}

// Temporary tables are dropped from both catalog and store after Run.
func TestPlannerCleanup(t *testing.T) {
	db := kiessling(t, 8)
	runPlanned(t, db, workload.KiesslingQ2, transform.JA2, planner.Options{})
	for _, name := range db.Cat.Names() {
		if strings.HasPrefix(name, "TEMP") {
			t.Errorf("catalog leaked %s", name)
		}
	}
	if _, ok := db.Store.Lookup("TEMP1"); ok {
		t.Error("store leaked TEMP1")
	}
}

// Forced methods still agree with nested-iteration ground truth on the
// duplicates fixture (exercises outer merge join and outer NL join with
// duplicate join values).
func TestPlannerDuplicatesAllMethods(t *testing.T) {
	for _, temp := range []planner.JoinMethod{planner.JoinMerge, planner.JoinNL} {
		db := workload.NewDB(8)
		if err := workload.LoadDuplicates(db); err != nil {
			t.Fatal(err)
		}
		rows, _ := runPlanned(t, db, workload.KiesslingQ2, transform.JA2,
			planner.Options{TempJoin: temp})
		if got := rowStrs(rows); got != "(10) (3) (8)" {
			t.Errorf("temp=%v rows = %v", temp, got)
		}
	}
}

// TempTuplesPerPage shapes materialized temp sizes.
func TestPlannerTempPageSize(t *testing.T) {
	db := kiessling(t, 8)
	_, pl := runPlanned(t, db, workload.KiesslingQ2, transform.JA2,
		planner.Options{TempTuplesPerPage: 1})
	notes := strings.Join(pl.Notes(), "\n")
	if !strings.Contains(notes, "TEMP1 materialized: 3 tuples, 3 pages") {
		t.Errorf("TEMP1 sizing wrong:\n%s", notes)
	}
}

func TestJoinMethodString(t *testing.T) {
	if planner.JoinAuto.String() != "auto" ||
		planner.JoinMerge.String() != "merge" ||
		planner.JoinNL.String() != "nested-loops" {
		t.Error("join method names")
	}
}
