package planner_test

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/index"
	"repro/internal/planner"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/transform"
	"repro/internal/value"
	"repro/internal/workload"
)

// manualResult builds a transform.Result from raw SQL (resolved against
// the catalog) for driving error paths.
func manualResult(t *testing.T, db *workload.DB, finalSQL string) *transform.Result {
	t.Helper()
	qb := sqlparser.MustParse(finalSQL)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	return &transform.Result{Query: qb}
}

func TestPlannerErrorPaths(t *testing.T) {
	db := kiessling(t, 8)

	// Residual correlated subquery (planner must refuse; the transformer
	// normally prevents this).
	qb := sqlparser.MustParse(`
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	pl := planner.New(db.Cat, db.Store, planner.Options{})
	if _, _, err := pl.Run(&transform.Result{Query: qb}); err == nil ||
		!strings.Contains(err.Error(), "correlated") {
		t.Errorf("residual correlation: %v", err)
	}

	// Constant subquery returning several rows.
	res := manualResult(t, db, `
		SELECT PNUM FROM PARTS WHERE QOH = (SELECT QUAN FROM SUPPLY)`)
	pl = planner.New(db.Cat, db.Store, planner.Options{})
	if _, _, err := pl.Run(res); err == nil || !strings.Contains(err.Error(), "returned") {
		t.Errorf("multi-row constant: %v", err)
	}

	// Unknown relation in a temp definition.
	badTemp := &transform.Result{
		Temps: []transform.TempTable{{
			Name: "TBAD",
			Rel:  &schema.Relation{Name: "TBAD", Columns: []schema.Column{{Name: "X", Type: value.KindInt}}},
			Def: &ast.QueryBlock{
				Select: []ast.SelectItem{{Col: ast.ColumnRef{Table: "NOPE", Column: "X"}}},
				From:   []ast.TableRef{{Relation: "NOPE"}},
			},
		}},
		Query: manualResult(t, db, "SELECT PNUM FROM PARTS").Query,
	}
	pl = planner.New(db.Cat, db.Store, planner.Options{})
	if _, _, err := pl.Run(badTemp); err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Errorf("bad temp: %v", err)
	}
	// The failed run must not leak the temp it registered before failing.
	if _, ok := db.Cat.Lookup("TBAD"); ok {
		t.Error("failed run leaked temp catalog entry")
	}
}

// Constant NULL from an empty uncorrelated subquery: comparison is
// Unknown, result empty, no error.
func TestPlannerConstantNullSubquery(t *testing.T) {
	db := kiessling(t, 8)
	res := manualResult(t, db, `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT MAX(QUAN) FROM SUPPLY WHERE QUAN > 1000)`)
	pl := planner.New(db.Cat, db.Store, planner.Options{})
	rows, _, err := pl.Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %v", rows)
	}
}

// Stats-driven planning exercises the selectivity and join-cardinality
// estimation paths.
func TestPlannerWithStatsEstimates(t *testing.T) {
	db := kiessling(t, 8)
	st := stats.New()
	if err := st.Analyze(db.Cat, db.Store); err != nil {
		t.Fatal(err)
	}
	rows, pl := runPlanned(t, db, workload.KiesslingQ2, transform.JA2,
		planner.Options{Stats: st})
	if got := rowStrs(rows); got != "(10) (8)" {
		t.Errorf("rows = %v", got)
	}
	if len(pl.Notes()) == 0 {
		t.Error("no plan notes")
	}
}

// A cartesian product in the final query (no join predicate at all).
func TestPlannerCartesianProduct(t *testing.T) {
	db := kiessling(t, 8)
	res := manualResult(t, db, "SELECT QOH, QUAN FROM PARTS, SUPPLY WHERE QOH = 99")
	pl := planner.New(db.Cat, db.Store, planner.Options{})
	rows, _, err := pl.Run(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Errorf("rows = %d", len(rows))
	}
	if !strings.Contains(strings.Join(pl.Notes(), "\n"), "cartesian") {
		t.Errorf("notes = %v", pl.Notes())
	}
}

// Planner-level anti-join: correlated NOT IN with NULLs on both sides.
func TestPlannerAntiJoin(t *testing.T) {
	db := workload.NewDB(8)
	cols := []schema.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindInt},
	}
	if err := db.Load(&schema.Relation{Name: "L", Columns: cols}, 2, []storage.Tuple{
		{value.NewInt(1), value.NewInt(5)},
		{value.NewInt(2), value.NewInt(6)},
		{value.NewInt(3), value.Null},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Load(&schema.Relation{Name: "R", Columns: cols}, 2, []storage.Tuple{
		{value.NewInt(1), value.NewInt(5)}, // matches L(1,5)
		{value.NewInt(2), value.Null},      // NULL member poisons L(2,6)
	}); err != nil {
		t.Fatal(err)
	}
	// Correlated NOT IN: V NOT IN (SELECT V FROM R WHERE R.K = L.K).
	rows, pl := runPlanned(t, db, `
		SELECT K FROM L
		WHERE V NOT IN (SELECT R.V FROM R WHERE R.K = L.K)`,
		transform.JA2, planner.Options{})
	// L(1,5): relevant {5} -> matched -> out. L(2,6): relevant {NULL} ->
	// unknown -> out. L(3,NULL): relevant set empty -> TRUE -> in.
	if got := rowStrs(rows); got != "(3)" {
		t.Errorf("anti-join rows = %v, want (3)", got)
	}
	if !strings.Contains(strings.Join(pl.Notes(), "\n"), "anti-join") {
		t.Errorf("notes = %v", pl.Notes())
	}
}

// Planner-level index access path and ORDER BY.
func TestPlannerIndexAndOrderBy(t *testing.T) {
	db := workload.NewDB(8)
	cols := []schema.Column{
		{Name: "K", Type: value.KindInt},
		{Name: "V", Type: value.KindInt},
	}
	rows := make([]storage.Tuple, 300)
	for i := range rows {
		rows[i] = storage.Tuple{value.NewInt(int64(i % 50)), value.NewInt(int64(i))}
	}
	if err := db.Load(&schema.Relation{Name: "BIG", Columns: cols}, 5, rows); err != nil {
		t.Fatal(err)
	}
	f, _ := db.Store.Lookup("BIG")
	reg := index.NewRegistry()
	rel, _ := db.Cat.Lookup("BIG")
	if err := reg.Add(index.Build(db.Store, f, rel.Name, "K", 0)); err != nil {
		t.Fatal(err)
	}
	got, pl := runPlanned(t, db,
		"SELECT K, V FROM BIG WHERE K = 7 ORDER BY V DESC",
		transform.JA2, planner.Options{Indexes: reg})
	if len(got) != 6 {
		t.Fatalf("rows = %d, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][1].Int() < got[i][1].Int() {
			t.Fatalf("not descending: %v", got)
		}
	}
	notes := strings.Join(pl.Notes(), "\n")
	if !strings.Contains(notes, "index scan") || !strings.Contains(notes, "ORDER BY sort") {
		t.Errorf("notes = %v", notes)
	}
}
