package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/qctx"
)

// Error codes: the engine's typed failure taxonomy, one byte each. The
// server maps any query error to a code with ErrorFrameFor; the client
// rebuilds an error that still satisfies errors.Is against the qctx
// sentinels — and errors.As against *qctx.OverloadError, so the
// retry-after hint survives the trip — with ErrorFrame.Err.
const (
	// CodeInternal covers everything untyped: parse errors, unknown
	// tables, planner failures, contained panics.
	CodeInternal byte = 0
	// CodeTimeout is qctx.ErrQueryTimeout (including queue-expired
	// deadlines rejected by admission).
	CodeTimeout byte = 1
	// CodeCanceled is qctx.ErrCanceled (client disconnect, drain).
	CodeCanceled byte = 2
	// CodeRowBudget and CodeMemoryBudget are the specific budget
	// violations; CodeBudget is the family for any other budget error.
	CodeRowBudget    byte = 3
	CodeMemoryBudget byte = 4
	CodeBudget       byte = 5
	// CodeOverloaded is an admission shed; the frame carries the
	// controller's retry-after hint.
	CodeOverloaded byte = 6
	// CodeCircuitOpen is a forced-parallel query refused while the
	// parallel path is circuit-broken.
	CodeCircuitOpen byte = 7
	// CodeProtocol is a wire-level failure: a malformed frame, a bad
	// handshake, an unexpected frame type.
	CodeProtocol byte = 8
	// CodeSlowClient is a slow-consumer eviction: the client stalled the
	// server's bounded write buffer past the write deadline, so the server
	// cancelled its query (freeing the admission slot and pool lease) and
	// is about to close the connection. Sent best-effort — a fully wedged
	// pipe may not deliver it, in which case the client sees the close as
	// a connection loss or a torn (checksum-failing) frame instead.
	CodeSlowClient byte = 9
)

// ErrSlowConsumer is what CodeSlowClient unwraps to on the client side: a
// typed sentinel for "the server evicted this connection for not reading
// fast enough".
var ErrSlowConsumer = errors.New("wire: consumer too slow, evicted")

// ErrorFrame is the payload of a FrameError.
type ErrorFrame struct {
	Code       byte
	RetryAfter time.Duration // only meaningful for CodeOverloaded
	Message    string
}

// ErrorFrameFor classifies err into the wire taxonomy. It must be called
// with a non-nil error.
func ErrorFrameFor(err error) ErrorFrame {
	f := ErrorFrame{Code: CodeInternal, Message: err.Error()}
	var ov *qctx.OverloadError
	switch {
	case errors.As(err, &ov):
		f.Code = CodeOverloaded
		f.RetryAfter = ov.RetryAfter
	case errors.Is(err, qctx.ErrQueryTimeout):
		f.Code = CodeTimeout
	case errors.Is(err, qctx.ErrCanceled):
		f.Code = CodeCanceled
	case errors.Is(err, qctx.ErrRowBudget):
		f.Code = CodeRowBudget
	case errors.Is(err, qctx.ErrMemoryBudget):
		f.Code = CodeMemoryBudget
	case errors.Is(err, qctx.ErrBudgetExceeded):
		f.Code = CodeBudget
	case errors.Is(err, qctx.ErrCircuitOpen):
		f.Code = CodeCircuitOpen
	}
	return f
}

// RemoteError is what a client surfaces for a server-side failure: the
// message as the server rendered it, unwrapping to the matching typed
// error so callers branch with errors.Is/As exactly as they would against
// a local engine.
type RemoteError struct {
	Frame ErrorFrame
}

func (e *RemoteError) Error() string {
	return "remote: " + e.Frame.Message
}

// Unwrap maps the code back onto the qctx taxonomy. CodeOverloaded
// unwraps to a reconstructed *qctx.OverloadError (which itself unwraps to
// qctx.ErrOverloaded), keeping the retry-after hint reachable through
// errors.As.
func (e *RemoteError) Unwrap() error {
	switch e.Frame.Code {
	case CodeTimeout:
		return qctx.ErrQueryTimeout
	case CodeCanceled:
		return qctx.ErrCanceled
	case CodeRowBudget:
		return qctx.ErrRowBudget
	case CodeMemoryBudget:
		return qctx.ErrMemoryBudget
	case CodeBudget:
		return qctx.ErrBudgetExceeded
	case CodeOverloaded:
		return &qctx.OverloadError{Reason: "remote", RetryAfter: e.Frame.RetryAfter}
	case CodeCircuitOpen:
		return qctx.ErrCircuitOpen
	case CodeSlowClient:
		return ErrSlowConsumer
	default:
		return nil
	}
}

// EncodeError builds an Error payload. Retry-after travels in
// nanoseconds so the codec is exact (the fuzz target checks stability).
func EncodeError(f ErrorFrame) []byte {
	p := []byte{f.Code}
	p = binary.AppendVarint(p, int64(f.RetryAfter))
	return append(p, f.Message...)
}

// DecodeError parses an Error payload.
func DecodeError(p []byte) (ErrorFrame, error) {
	var f ErrorFrame
	if len(p) < 1 {
		return f, fmt.Errorf("wire: empty error frame")
	}
	f.Code = p[0]
	nanos, rest, err := getVarint(p[1:], "retry-after")
	if err != nil {
		return f, err
	}
	f.RetryAfter = time.Duration(nanos)
	f.Message = string(rest)
	return f, nil
}
