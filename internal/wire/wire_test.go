package wire

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
)

func date(t *testing.T, s string) value.Value {
	t.Helper()
	d, err := value.ParseDate(s)
	if err != nil {
		t.Fatal(err)
	}
	return value.NewDateValue(d)
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1, 2, 3}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Errorf("frame %d: type=%d payload %d bytes, want type=%d %d bytes",
				i, typ, len(got), i+1, len(p))
		}
	}
}

func TestFrameLengthBounds(t *testing.T) {
	// A declared length beyond MaxFrame must be rejected before allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err == nil {
		t.Error("oversized frame length accepted")
	}
	// Zero length (no type byte) is likewise malformed.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Error("zero-length frame accepted")
	}
	if err := WriteFrame(&bytes.Buffer{}, FrameRowBatch, make([]byte, MaxFrame)); err == nil {
		t.Error("writing an over-large frame must fail")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h, err := DecodeHello(EncodeHello(Hello{Version: Version}))
	if err != nil || h.Version != Version || h.Legacy || h.Flags != 0 {
		t.Fatalf("hello round trip: %+v, %v", h, err)
	}
	for _, bad := range [][]byte{nil, []byte("NSQ"), []byte("XXXX\x01"), []byte("NSQD"), []byte("NSQD\x01\x03\x00")} {
		if _, err := DecodeHello(bad); err == nil {
			t.Errorf("DecodeHello(%q) accepted", bad)
		}
	}
}

// TestHelloFeatureNegotiation: the extended Hello carries feature flags,
// the legacy 5-byte form decodes as Legacy with none, and each form
// re-encodes to exactly the bytes it came from (old peers interop).
func TestHelloFeatureNegotiation(t *testing.T) {
	ext := Hello{Version: Version, Flags: FeatureChecksum | FeatureHeartbeat}
	got, err := DecodeHello(EncodeHello(ext))
	if err != nil || got != ext {
		t.Fatalf("extended hello: %+v, %v", got, err)
	}
	legacy := []byte(Magic + "\x01")
	h, err := DecodeHello(legacy)
	if err != nil || !h.Legacy || h.Flags != 0 {
		t.Fatalf("legacy hello: %+v, %v", h, err)
	}
	if !bytes.Equal(EncodeHello(h), legacy) {
		t.Errorf("legacy hello does not re-encode to its 5-byte form")
	}
}

// TestChecksummedFrameRoundTrip: the negotiated codec writes a CRC32C
// trailer and strips it on read; plain and checksummed framings of the
// same payload differ only by the 4 trailer bytes.
func TestChecksummedFrameRoundTrip(t *testing.T) {
	codec := Codec{Checksums: true}
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, {1, 2, 3}, bytes.Repeat([]byte{0xAB}, 4096)}
	for i, p := range payloads {
		if err := codec.WriteFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		typ, got, err := codec.ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if typ != byte(i+1) || !bytes.Equal(got, p) {
			t.Errorf("frame %d: type=%d payload %d bytes, want type=%d %d bytes",
				i, typ, len(got), i+1, len(p))
		}
	}
	// Oversize guard accounts for the trailer.
	if err := codec.WriteFrame(&bytes.Buffer{}, FrameRowBatch, make([]byte, MaxFrame-4)); err == nil {
		t.Error("checksummed over-large frame accepted")
	}
}

// TestChecksumDetectsCorruption: flipping any single byte after the
// length prefix must surface as ErrCorruptFrame, never a decoded frame.
// (FuzzFrameCorruption generalizes this over arbitrary payloads.)
func TestChecksumDetectsCorruption(t *testing.T) {
	codec := Codec{Checksums: true}
	var buf bytes.Buffer
	if err := codec.WriteFrame(&buf, FrameRowBatch, EncodeRowBatch(RowBatch{
		Columns: []string{"K"},
		Rows:    []storage.Tuple{{value.NewInt(42)}},
	})); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for pos := 4; pos < len(frame); pos++ {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x5A
		_, _, err := codec.ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("corrupting byte %d: err = %v, want ErrCorruptFrame", pos, err)
		}
	}
	// The pristine frame still reads back.
	if _, _, err := codec.ReadFrame(bytes.NewReader(frame)); err != nil {
		t.Fatalf("pristine frame: %v", err)
	}
}

// TestPingRoundTrip covers the heartbeat payload codec.
func TestPingRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 1 << 40} {
		got, err := DecodePing(EncodePing(seq))
		if err != nil || got != seq {
			t.Errorf("ping seq %d: got %d, %v", seq, got, err)
		}
	}
	for _, bad := range [][]byte{{}, {0x80}, {0x01, 0x00}} {
		if _, err := DecodePing(bad); err == nil {
			t.Errorf("DecodePing(% x) accepted", bad)
		}
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q := Query{
		TimeoutMicros: 2_500_000,
		MaxRows:       1 << 20,
		Strategy:      StrategyTransform,
		Parallelism:   -1,
		SQL:           "SELECT PNUM FROM PARTS WHERE QOH = 0",
	}
	got, err := DecodeQuery(EncodeQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	if got != q {
		t.Errorf("query round trip:\n got  %+v\n want %+v", got, q)
	}
	if _, err := DecodeQuery(nil); err == nil {
		t.Error("empty query payload accepted")
	}
}

func TestRowBatchRoundTrip(t *testing.T) {
	b := RowBatch{
		Columns: []string{"PNUM", "NAME", "RATIO", "SHIPDATE", "NOTE"},
		Rows: []storage.Tuple{
			{value.NewInt(3), value.NewString("widget"), value.NewFloat(0.5), date(t, "7-3-79"), value.Null},
			{value.NewInt(-9), value.NewString(""), value.NewFloat(-1e300), date(t, "1999-12-31"), value.NewString("x\x00y")},
		},
	}
	got, err := DecodeRowBatch(EncodeRowBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Errorf("row batch round trip:\n got  %+v\n want %+v", got, b)
	}

	// Zero rows still carries the columns (how empty results travel).
	empty := RowBatch{Columns: []string{"A"}}
	got, err = DecodeRowBatch(EncodeRowBatch(empty))
	if err != nil || len(got.Rows) != 0 || len(got.Columns) != 1 {
		t.Errorf("empty batch: %+v, %v", got, err)
	}
}

func TestRowBatchMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"huge column count": {0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"rows sans columns": {0, 2},
		"truncated row":     append(EncodeRowBatch(RowBatch{Columns: []string{"A"}}), 0xFF),
		"trailing bytes":    append(EncodeRowBatch(RowBatch{Columns: []string{"A"}, Rows: []storage.Tuple{{value.NewInt(1)}}}), 0),
		"bad value kind":    {1, 1, 'A', 1, 0x7F},
		"truncated string":  {1, 1, 'A', 1, byte(value.KindString), 200},
		"huge row count":    {1, 1, 'A', 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"bad date value":    {1, 1, 'A', 1, byte(value.KindDate), 0x01},
	}
	for name, p := range cases {
		if _, err := DecodeRowBatch(p); err == nil {
			t.Errorf("%s: malformed batch accepted", name)
		}
	}
}

func TestDoneRoundTrip(t *testing.T) {
	d := Done{Rows: 42, Reads: 100, Writes: 7, FellBack: true}
	got, err := DecodeDone(EncodeDone(d))
	if err != nil || got != d {
		t.Fatalf("done round trip: %+v, %v", got, err)
	}
	if _, err := DecodeDone([]byte{1}); err == nil {
		t.Error("truncated done accepted")
	}
}

// TestErrorTaxonomyAcrossWire is the satellite-1/tentpole contract: every
// typed engine failure classifies to its code, and the client-side
// reconstruction still answers errors.Is — with the overload retry-after
// hint intact through errors.As.
func TestErrorTaxonomyAcrossWire(t *testing.T) {
	cases := []struct {
		err  error
		code byte
		is   error
	}{
		{qctx.ErrQueryTimeout, CodeTimeout, qctx.ErrQueryTimeout},
		{fmt.Errorf("wrapped: %w", qctx.ErrQueryTimeout), CodeTimeout, qctx.ErrQueryTimeout},
		{qctx.ErrCanceled, CodeCanceled, qctx.ErrCanceled},
		{qctx.ErrRowBudget, CodeRowBudget, qctx.ErrBudgetExceeded},
		{qctx.ErrMemoryBudget, CodeMemoryBudget, qctx.ErrMemoryBudget},
		{qctx.ErrBudgetExceeded, CodeBudget, qctx.ErrBudgetExceeded},
		{qctx.ErrCircuitOpen, CodeCircuitOpen, qctx.ErrCircuitOpen},
		{&qctx.OverloadError{Reason: "queue full", RetryAfter: 80 * time.Millisecond}, CodeOverloaded, qctx.ErrOverloaded},
		{errors.New("parse error"), CodeInternal, nil},
	}
	for _, c := range cases {
		f := ErrorFrameFor(c.err)
		if f.Code != c.code {
			t.Errorf("%v: code = %d, want %d", c.err, f.Code, c.code)
			continue
		}
		dec, err := DecodeError(EncodeError(f))
		if err != nil {
			t.Fatalf("%v: decode: %v", c.err, err)
		}
		remote := &RemoteError{Frame: dec}
		if c.is != nil && !errors.Is(remote, c.is) {
			t.Errorf("%v: reconstructed error does not match sentinel %v", c.err, c.is)
		}
		if !strings.Contains(remote.Error(), c.err.Error()) {
			t.Errorf("%v: message lost: %q", c.err, remote.Error())
		}
	}

	// The retry-after hint must survive the round trip.
	f := ErrorFrameFor(&qctx.OverloadError{Reason: "queue full", RetryAfter: 80 * time.Millisecond})
	dec, err := DecodeError(EncodeError(f))
	if err != nil {
		t.Fatal(err)
	}
	var ov *qctx.OverloadError
	if !errors.As(&RemoteError{Frame: dec}, &ov) || ov.RetryAfter != 80*time.Millisecond {
		t.Errorf("retry-after lost across the wire: %+v", ov)
	}

	// A slow-client eviction frame is typed on the receiving end too.
	evict := &RemoteError{Frame: ErrorFrame{Code: CodeSlowClient, Message: "evicted"}}
	if !errors.Is(evict, ErrSlowConsumer) {
		t.Errorf("CodeSlowClient does not unwrap to ErrSlowConsumer")
	}
}
