package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame asserts the wire decoder's defensive contract: arbitrary
// bytes — a frame header plus payload as they would arrive off a socket —
// never panic, never hang, and never demand an allocation beyond MaxFrame.
// Anything that decodes as a well-formed payload must re-encode and
// re-decode identically (the server and client both rely on the codec
// being a bijection on the valid subset). Malformed frames must come back
// as errors, which the server turns into CodeProtocol Error frames.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(FrameHello, EncodeHello(Hello{Version: Version})))
	f.Add(frame(FrameQuery, EncodeQuery(Query{
		TimeoutMicros: 1000, MaxRows: 10, Strategy: StrategyTransform, Parallelism: -1,
		SQL: "SELECT PNUM FROM PARTS",
	})))
	f.Add(frame(FrameRowBatch, EncodeRowBatch(RowBatch{Columns: []string{"A", "B"}})))
	f.Add(frame(FrameDone, EncodeDone(Done{Rows: 3, Reads: 5, Writes: 1, FellBack: true})))
	f.Add(frame(FrameError, EncodeError(ErrorFrame{Code: CodeOverloaded, Message: "queue full"})))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add([]byte{0, 0, 0, 2, FrameRowBatch, 0xFF})
	// Fault-tolerance extensions: the extended Hello, heartbeats, and
	// checksummed frames (which a plain reader sees as payload+trailer).
	f.Add(frame(FrameHello, EncodeHello(Hello{Version: Version, Flags: FeatureChecksum | FeatureHeartbeat})))
	f.Add(frame(FramePing, EncodePing(7)))
	f.Add(frame(FramePong, EncodePing(1<<40)))
	cframe := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := (Codec{Checksums: true}).WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(cframe(FrameQuery, EncodeQuery(Query{SQL: "SELECT PNUM FROM PARTS"})))
	f.Add(cframe(FrameError, EncodeError(ErrorFrame{Code: CodeSlowClient, Message: "evicted"})))
	// Cluster extensions: shard scatter/gather frames, plain and
	// checksummed, so a malformed shuffle frame can never panic a worker
	// or coordinator.
	f.Add(frame(FrameShardQuery, EncodeShardQuery(ShardQuery{
		TimeoutMicros: 500, Strategy: StrategyTransform, NumShards: 3, KeyCols: []int64{0, 2},
		SQL: "SELECT PNUM, QOH FROM PARTS",
	})))
	f.Add(frame(FrameShardBatch, EncodeShardBatch(ShardBatch{
		Shard: 2, Batch: RowBatch{Columns: []string{"PNUM"}},
	})))
	f.Add(frame(FrameShardDone, EncodeShardDone(ShardDone{Reads: 9, PerShard: []int64{4, 0, 5}})))
	f.Add(cframe(FrameShardQuery, EncodeShardQuery(ShardQuery{NumShards: 1, SQL: "SELECT SNO FROM S"})))
	f.Add(cframe(FrameShardDone, EncodeShardDone(ShardDone{PerShard: []int64{1}})))
	// Replication extensions: snapshot shipping for worker rejoin.
	f.Add(frame(FrameSnapshot, EncodeSnapshot(Snapshot{Table: "SP__S1"})))
	f.Add(frame(FrameSnapshotMeta, EncodeSnapshotMeta(SnapshotMeta{CreateSQL: "CREATE TABLE SP__S1 (SNO INTEGER)"})))
	f.Add(cframe(FrameSnapshot, EncodeSnapshot(Snapshot{Table: "S__S0"})))

	f.Fuzz(func(t *testing.T, raw []byte) {
		// The checksummed reader must be as panic-proof as the plain one,
		// whatever the bytes; its successes are checked by
		// FuzzFrameCorruption, here it only has to survive.
		_, _, _ = (Codec{Checksums: true}).ReadFrame(bytes.NewReader(raw))

		typ, payload, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		switch typ {
		case FrameHello:
			if h, err := DecodeHello(payload); err == nil {
				if got := EncodeHello(h); !bytes.Equal(got, payload) {
					t.Fatalf("hello not stable: % x vs % x", got, payload)
				}
			}
		case FrameQuery:
			if q, err := DecodeQuery(payload); err == nil {
				q2, err := DecodeQuery(EncodeQuery(q))
				if err != nil || q2 != q {
					t.Fatalf("query not stable: %+v vs %+v (%v)", q2, q, err)
				}
			}
		case FrameRowBatch:
			if b, err := DecodeRowBatch(payload); err == nil {
				// Re-encoding may differ byte-for-byte (varints are not
				// canonical under fuzzed over-long forms), but it must
				// decode back to the same batch.
				b2, err := DecodeRowBatch(EncodeRowBatch(b))
				if err != nil {
					t.Fatalf("re-decode failed: %v", err)
				}
				if len(b2.Rows) != len(b.Rows) || len(b2.Columns) != len(b.Columns) {
					t.Fatalf("batch not stable: %d/%d cols, %d/%d rows",
						len(b2.Columns), len(b.Columns), len(b2.Rows), len(b.Rows))
				}
			}
		case FrameDone:
			if d, err := DecodeDone(payload); err == nil {
				if d2, err := DecodeDone(EncodeDone(d)); err != nil || d2 != d {
					t.Fatalf("done not stable: %+v vs %+v (%v)", d2, d, err)
				}
			}
		case FrameError:
			if e, err := DecodeError(payload); err == nil {
				if e2, err := DecodeError(EncodeError(e)); err != nil || e2 != e {
					t.Fatalf("error frame not stable: %+v vs %+v (%v)", e2, e, err)
				}
				// Reconstructing the client-side error must never panic,
				// whatever the code byte says.
				_ = (&RemoteError{Frame: e}).Unwrap()
			}
		case FrameShardQuery:
			if q, err := DecodeShardQuery(payload); err == nil {
				q2, err := DecodeShardQuery(EncodeShardQuery(q))
				if err != nil || q2.SQL != q.SQL || q2.NumShards != q.NumShards ||
					len(q2.KeyCols) != len(q.KeyCols) {
					t.Fatalf("shard query not stable: %+v vs %+v (%v)", q2, q, err)
				}
			}
		case FrameShardBatch:
			if b, err := DecodeShardBatch(payload); err == nil {
				b2, err := DecodeShardBatch(EncodeShardBatch(b))
				if err != nil || b2.Shard != b.Shard ||
					len(b2.Batch.Rows) != len(b.Batch.Rows) || len(b2.Batch.Columns) != len(b.Batch.Columns) {
					t.Fatalf("shard batch not stable: %+v vs %+v (%v)", b2, b, err)
				}
			}
		case FrameShardDone:
			if d, err := DecodeShardDone(payload); err == nil {
				d2, err := DecodeShardDone(EncodeShardDone(d))
				if err != nil || d2.Reads != d.Reads || d2.Writes != d.Writes ||
					len(d2.PerShard) != len(d.PerShard) {
					t.Fatalf("shard done not stable: %+v vs %+v (%v)", d2, d, err)
				}
			}
		case FrameSnapshot:
			if s, err := DecodeSnapshot(payload); err == nil {
				if s2, err := DecodeSnapshot(EncodeSnapshot(s)); err != nil || s2 != s {
					t.Fatalf("snapshot not stable: %+v vs %+v (%v)", s2, s, err)
				}
			}
		case FrameSnapshotMeta:
			if m, err := DecodeSnapshotMeta(payload); err == nil {
				if m2, err := DecodeSnapshotMeta(EncodeSnapshotMeta(m)); err != nil || m2 != m {
					t.Fatalf("snapshot meta not stable: %+v vs %+v (%v)", m2, m, err)
				}
			}
		case FramePing, FramePong:
			if seq, err := DecodePing(payload); err == nil {
				// Over-long varint forms are accepted, so bytes need not
				// round-trip — but the value must.
				if seq2, err := DecodePing(EncodePing(seq)); err != nil || seq2 != seq {
					t.Fatalf("ping not stable: %d vs %d (%v)", seq2, seq, err)
				}
			}
		}
	})
}

// FuzzFrameCorruption asserts the checksum's reason for existing: ANY
// single-byte corruption of a checksummed frame's body — the type byte,
// the payload, or the CRC trailer itself — is detected and surfaces as
// ErrCorruptFrame, never as a silently garbled frame. (CRC32 detects all
// single-burst errors up to 32 bits, so a one-byte XOR can never alias.)
// The length prefix is left alone: corrupting it re-frames the stream
// rather than damaging this frame, and is exercised by FuzzDecodeFrame.
func FuzzFrameCorruption(f *testing.F) {
	f.Add(FrameQuery, EncodeQuery(Query{SQL: "SELECT PNUM FROM PARTS"}), uint16(9), byte(0x01))
	f.Add(FrameRowBatch, EncodeRowBatch(RowBatch{Columns: []string{"A"}}), uint16(5), byte(0x80))
	f.Add(FramePing, EncodePing(7), uint16(4), byte(0xFF))
	f.Add(FrameDone, EncodeDone(Done{Rows: 3}), uint16(0), byte(0x40))
	f.Add(FrameShardQuery, EncodeShardQuery(ShardQuery{NumShards: 3, KeyCols: []int64{1}, SQL: "SELECT PNUM FROM SUPPLY"}), uint16(6), byte(0x02))
	f.Add(FrameShardBatch, EncodeShardBatch(ShardBatch{Shard: 1, Batch: RowBatch{Columns: []string{"PNUM"}}}), uint16(2), byte(0x08))
	f.Add(FrameShardDone, EncodeShardDone(ShardDone{Reads: 2, PerShard: []int64{1, 1, 0}}), uint16(3), byte(0x20))

	f.Fuzz(func(t *testing.T, typ byte, payload []byte, idx uint16, mask byte) {
		codec := Codec{Checksums: true}
		var buf bytes.Buffer
		if err := codec.WriteFrame(&buf, typ, payload); err != nil {
			t.Skip("oversize payload")
		}
		pristine := buf.Bytes()
		typ2, payload2, err := codec.ReadFrame(bytes.NewReader(pristine))
		if err != nil {
			t.Fatalf("pristine frame rejected: %v", err)
		}
		if typ2 != typ || !bytes.Equal(payload2, payload) {
			t.Fatalf("pristine frame mutated: typ %02x/%02x, %d/%d payload bytes",
				typ2, typ, len(payload2), len(payload))
		}
		if mask == 0 {
			return // XOR by zero is not corruption
		}
		frame := bytes.Clone(pristine)
		i := 4 + int(idx)%(len(frame)-4)
		frame[i] ^= mask
		_, _, err = codec.ReadFrame(bytes.NewReader(frame))
		if err == nil {
			t.Fatalf("single-byte corruption at offset %d (mask %02x) decoded cleanly", i, mask)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			// A flipped type/payload byte must be caught by the checksum,
			// typed; only garbage that breaks framing itself may surface
			// as a different decode error.
			t.Fatalf("corruption at %d surfaced untyped: %v", i, err)
		}
	})
}
