package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame asserts the wire decoder's defensive contract: arbitrary
// bytes — a frame header plus payload as they would arrive off a socket —
// never panic, never hang, and never demand an allocation beyond MaxFrame.
// Anything that decodes as a well-formed payload must re-encode and
// re-decode identically (the server and client both rely on the codec
// being a bijection on the valid subset). Malformed frames must come back
// as errors, which the server turns into CodeProtocol Error frames.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(FrameHello, EncodeHello(Hello{Version: Version})))
	f.Add(frame(FrameQuery, EncodeQuery(Query{
		TimeoutMicros: 1000, MaxRows: 10, Strategy: StrategyTransform, Parallelism: -1,
		SQL: "SELECT PNUM FROM PARTS",
	})))
	f.Add(frame(FrameRowBatch, EncodeRowBatch(RowBatch{Columns: []string{"A", "B"}})))
	f.Add(frame(FrameDone, EncodeDone(Done{Rows: 3, Reads: 5, Writes: 1, FellBack: true})))
	f.Add(frame(FrameError, EncodeError(ErrorFrame{Code: CodeOverloaded, Message: "queue full"})))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add([]byte{0, 0, 0, 2, FrameRowBatch, 0xFF})

	f.Fuzz(func(t *testing.T, raw []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(raw))
		if err != nil {
			return
		}
		switch typ {
		case FrameHello:
			if h, err := DecodeHello(payload); err == nil {
				if got := EncodeHello(h); !bytes.Equal(got, payload) {
					t.Fatalf("hello not stable: % x vs % x", got, payload)
				}
			}
		case FrameQuery:
			if q, err := DecodeQuery(payload); err == nil {
				q2, err := DecodeQuery(EncodeQuery(q))
				if err != nil || q2 != q {
					t.Fatalf("query not stable: %+v vs %+v (%v)", q2, q, err)
				}
			}
		case FrameRowBatch:
			if b, err := DecodeRowBatch(payload); err == nil {
				// Re-encoding may differ byte-for-byte (varints are not
				// canonical under fuzzed over-long forms), but it must
				// decode back to the same batch.
				b2, err := DecodeRowBatch(EncodeRowBatch(b))
				if err != nil {
					t.Fatalf("re-decode failed: %v", err)
				}
				if len(b2.Rows) != len(b.Rows) || len(b2.Columns) != len(b.Columns) {
					t.Fatalf("batch not stable: %d/%d cols, %d/%d rows",
						len(b2.Columns), len(b.Columns), len(b2.Rows), len(b.Rows))
				}
			}
		case FrameDone:
			if d, err := DecodeDone(payload); err == nil {
				if d2, err := DecodeDone(EncodeDone(d)); err != nil || d2 != d {
					t.Fatalf("done not stable: %+v vs %+v (%v)", d2, d, err)
				}
			}
		case FrameError:
			if e, err := DecodeError(payload); err == nil {
				if e2, err := DecodeError(EncodeError(e)); err != nil || e2 != e {
					t.Fatalf("error frame not stable: %+v vs %+v (%v)", e2, e, err)
				}
				// Reconstructing the client-side error must never panic,
				// whatever the code byte says.
				_ = (&RemoteError{Frame: e}).Unwrap()
			}
		}
	})
}
