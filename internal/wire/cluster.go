// Cluster frames: the shard scatter/gather extension of the protocol.
//
// A coordinator sends FrameShardQuery to a worker; the worker executes
// the query locally and streams FrameShardBatch frames — RowBatches
// tagged with the destination partition each row hashes to — finishing
// with FrameShardDone (per-partition row counts, so the coordinator can
// cross-check nothing was dropped in flight). Errors use the ordinary
// FrameError taxonomy. The frames ride the negotiated codec, so CRC32C
// checksums and heartbeats cover shuffle traffic exactly as they cover
// client traffic.
//
// Partitioning happens worker-side (internal/cluster.Partitioner) so a
// shuffle ships each row once; the coordinator only forwards batches to
// their destination. The hash is value.Hash, which is Equal-consistent
// with NULL-safe <=> semantics: every NULL key lands on partition 0.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Cluster frame types, continuing the 0x01–0x07 sequence in wire.go.
const (
	// FrameShardQuery asks a worker to run a query and partition every
	// result row by the hash of its key columns.
	FrameShardQuery byte = 0x08
	// FrameShardBatch is a RowBatch tagged with the partition its rows
	// hash to.
	FrameShardBatch byte = 0x09
	// FrameShardDone ends a successful shard stream with per-partition
	// row counts.
	FrameShardDone byte = 0x0A
	// FrameSnapshot asks a worker to ship a full copy of one table: a
	// FrameSnapshotMeta (the table's CREATE statement), RowBatch frames,
	// then FrameDone. Rejoining workers rebuild lost shards from it.
	FrameSnapshot byte = 0x0B
	// FrameSnapshotMeta opens a snapshot stream with the schema needed
	// to recreate the table on the receiving side.
	FrameSnapshotMeta byte = 0x0C
)

// FeatureCluster is the Hello feature bit for the shard frames. A server
// grants it only when it fronts a local engine (a worker); coordinators
// and pre-cluster servers leave it unset, and clients must not send
// FrameShardQuery without it.
const FeatureCluster byte = 1 << 2

// maxShards bounds the partition counts a decoder will believe. Far above
// any plausible cluster size, far below anything allocation-hazardous.
const maxShards = 1 << 10

// ShardQuery asks a worker to execute SQL and scatter the result.
// KeyCols are indexes into the result columns forming the partition key;
// an empty KeyCols sends every row to partition 0 (a broadcast-gather).
type ShardQuery struct {
	TimeoutMicros int64
	Strategy      byte
	NumShards     int64
	KeyCols       []int64
	SQL           string
}

// EncodeShardQuery builds a ShardQuery payload.
func EncodeShardQuery(q ShardQuery) []byte {
	p := binary.AppendVarint(nil, q.TimeoutMicros)
	p = append(p, q.Strategy)
	p = binary.AppendVarint(p, q.NumShards)
	p = binary.AppendUvarint(p, uint64(len(q.KeyCols)))
	for _, k := range q.KeyCols {
		p = binary.AppendVarint(p, k)
	}
	return append(p, q.SQL...)
}

// DecodeShardQuery parses a ShardQuery payload.
func DecodeShardQuery(p []byte) (ShardQuery, error) {
	var q ShardQuery
	var err error
	if q.TimeoutMicros, p, err = getVarint(p, "shard query timeout"); err != nil {
		return q, err
	}
	if len(p) < 1 {
		return q, fmt.Errorf("wire: shard query truncated before strategy")
	}
	q.Strategy, p = p[0], p[1:]
	if q.NumShards, p, err = getVarint(p, "shard count"); err != nil {
		return q, err
	}
	if q.NumShards < 1 || q.NumShards > maxShards {
		return q, fmt.Errorf("wire: shard count %d out of range", q.NumShards)
	}
	nkeys, p, err := getUvarint(p, "key column count")
	if err != nil {
		return q, err
	}
	if nkeys > maxCols {
		return q, fmt.Errorf("wire: %d key columns exceeds limit", nkeys)
	}
	for i := uint64(0); i < nkeys; i++ {
		var k int64
		if k, p, err = getVarint(p, "key column"); err != nil {
			return q, err
		}
		if k < 0 || k >= maxCols {
			return q, fmt.Errorf("wire: key column %d out of range", k)
		}
		q.KeyCols = append(q.KeyCols, k)
	}
	q.SQL = string(p)
	return q, nil
}

// ShardBatch is one partition-tagged chunk of a scattered result.
type ShardBatch struct {
	Shard uint32
	Batch RowBatch
}

// EncodeShardBatch builds a ShardBatch payload.
func EncodeShardBatch(b ShardBatch) []byte {
	p := binary.AppendUvarint(nil, uint64(b.Shard))
	return append(p, EncodeRowBatch(b.Batch)...)
}

// DecodeShardBatch parses a ShardBatch payload.
func DecodeShardBatch(p []byte) (ShardBatch, error) {
	var b ShardBatch
	shard, p, err := getUvarint(p, "shard tag")
	if err != nil {
		return b, err
	}
	if shard >= maxShards {
		return b, fmt.Errorf("wire: shard tag %d out of range", shard)
	}
	b.Shard = uint32(shard)
	if b.Batch, err = DecodeRowBatch(p); err != nil {
		return b, err
	}
	return b, nil
}

// maxSnapshotName bounds the table name a snapshot decoder will believe.
const maxSnapshotName = 1 << 10

// Snapshot asks a worker for a full copy of one physical table.
type Snapshot struct {
	Table string
}

// EncodeSnapshot builds a Snapshot payload.
func EncodeSnapshot(s Snapshot) []byte {
	return []byte(s.Table)
}

// DecodeSnapshot parses a Snapshot payload.
func DecodeSnapshot(p []byte) (Snapshot, error) {
	if len(p) == 0 {
		return Snapshot{}, fmt.Errorf("wire: snapshot without a table name")
	}
	if len(p) > maxSnapshotName {
		return Snapshot{}, fmt.Errorf("wire: snapshot table name %d bytes exceeds limit", len(p))
	}
	return Snapshot{Table: string(p)}, nil
}

// SnapshotMeta opens a snapshot stream: the CREATE TABLE statement that
// rebuilds the table's schema on the receiving side. Rows follow as
// ordinary RowBatch frames, terminated by FrameDone.
type SnapshotMeta struct {
	CreateSQL string
}

// EncodeSnapshotMeta builds a SnapshotMeta payload.
func EncodeSnapshotMeta(m SnapshotMeta) []byte {
	return []byte(m.CreateSQL)
}

// DecodeSnapshotMeta parses a SnapshotMeta payload.
func DecodeSnapshotMeta(p []byte) (SnapshotMeta, error) {
	if len(p) == 0 {
		return SnapshotMeta{}, fmt.Errorf("wire: snapshot meta without a schema")
	}
	return SnapshotMeta{CreateSQL: string(p)}, nil
}

// ShardDone ends a successful shard stream. PerShard holds the number of
// rows emitted to each partition, in partition order, so the coordinator
// can verify its gathered counts against what the worker sent.
type ShardDone struct {
	Reads    int64
	Writes   int64
	PerShard []int64
}

// EncodeShardDone builds a ShardDone payload.
func EncodeShardDone(d ShardDone) []byte {
	p := binary.AppendVarint(nil, d.Reads)
	p = binary.AppendVarint(p, d.Writes)
	p = binary.AppendUvarint(p, uint64(len(d.PerShard)))
	for _, n := range d.PerShard {
		p = binary.AppendVarint(p, n)
	}
	return p
}

// DecodeShardDone parses a ShardDone payload.
func DecodeShardDone(p []byte) (ShardDone, error) {
	var d ShardDone
	var err error
	if d.Reads, p, err = getVarint(p, "shard done reads"); err != nil {
		return d, err
	}
	if d.Writes, p, err = getVarint(p, "shard done writes"); err != nil {
		return d, err
	}
	nshards, p, err := getUvarint(p, "shard done count")
	if err != nil {
		return d, err
	}
	if nshards > maxShards {
		return d, fmt.Errorf("wire: %d per-shard counts exceeds limit", nshards)
	}
	for i := uint64(0); i < nshards; i++ {
		var n int64
		if n, p, err = getVarint(p, "per-shard rows"); err != nil {
			return d, err
		}
		if n < 0 {
			return d, fmt.Errorf("wire: negative per-shard row count")
		}
		d.PerShard = append(d.PerShard, n)
	}
	if len(p) != 0 {
		return d, fmt.Errorf("wire: %d trailing bytes after shard done", len(p))
	}
	return d, nil
}
