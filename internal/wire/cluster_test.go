package wire

import (
	"reflect"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func TestShardQueryRoundtrip(t *testing.T) {
	cases := []ShardQuery{
		{NumShards: 1, SQL: "SELECT SNO FROM S"},
		{TimeoutMicros: 250_000, Strategy: StrategyTransform, NumShards: 3,
			KeyCols: []int64{0}, SQL: "SELECT PNUM, QOH FROM PARTS"},
		{NumShards: 4, KeyCols: []int64{2, 0}, SQL: "SELECT A, B, C FROM T"},
	}
	for _, q := range cases {
		got, err := DecodeShardQuery(EncodeShardQuery(q))
		if err != nil {
			t.Fatalf("DecodeShardQuery(%+v): %v", q, err)
		}
		if !reflect.DeepEqual(got, q) {
			t.Fatalf("roundtrip: got %+v, want %+v", got, q)
		}
	}
}

func TestShardQueryDecodeRejects(t *testing.T) {
	bad := [][]byte{
		{},                // empty
		{0x00},            // truncated before strategy
		EncodeShardQuery(ShardQuery{NumShards: 0, SQL: "X"}),          // zero shards
		EncodeShardQuery(ShardQuery{NumShards: maxShards + 1, SQL: "X"}), // too many shards
		EncodeShardQuery(ShardQuery{NumShards: 2, KeyCols: []int64{-1}, SQL: "X"}), // negative key col
		EncodeShardQuery(ShardQuery{NumShards: 2, KeyCols: []int64{maxCols}, SQL: "X"}), // key col too big
	}
	for i, p := range bad {
		if _, err := DecodeShardQuery(p); err == nil {
			t.Fatalf("case %d: decode accepted malformed payload % x", i, p)
		}
	}
}

func TestShardBatchRoundtrip(t *testing.T) {
	b := ShardBatch{
		Shard: 2,
		Batch: RowBatch{
			Columns: []string{"PNUM", "QOH"},
			Rows: []storage.Tuple{
				{value.NewInt(3), value.Null},
				{value.Null, value.NewString("x")},
			},
		},
	}
	got, err := DecodeShardBatch(EncodeShardBatch(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shard != b.Shard || len(got.Batch.Rows) != 2 || got.Batch.Columns[1] != "QOH" {
		t.Fatalf("roundtrip: got %+v", got)
	}
	if !got.Batch.Rows[0][0].Equal(b.Batch.Rows[0][0]) || !got.Batch.Rows[0][1].IsNull() {
		t.Fatalf("values mutated: %+v", got.Batch.Rows)
	}
}

func TestShardBatchDecodeRejectsHugeShard(t *testing.T) {
	b := ShardBatch{Shard: maxShards, Batch: RowBatch{Columns: []string{"A"}}}
	if _, err := DecodeShardBatch(EncodeShardBatch(b)); err == nil {
		t.Fatal("decode accepted out-of-range shard tag")
	}
}

func TestShardDoneRoundtrip(t *testing.T) {
	d := ShardDone{Reads: 42, Writes: 7, PerShard: []int64{10, 0, 3}}
	got, err := DecodeShardDone(EncodeShardDone(d))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("roundtrip: got %+v, want %+v", got, d)
	}
	// Empty PerShard must survive too (a worker with zero shards is
	// nonsense, but zero rows everywhere is not).
	if got, err := DecodeShardDone(EncodeShardDone(ShardDone{})); err != nil || len(got.PerShard) != 0 {
		t.Fatalf("empty roundtrip: %+v, %v", got, err)
	}
}

func TestSnapshotRoundtrip(t *testing.T) {
	s, err := DecodeSnapshot(EncodeSnapshot(Snapshot{Table: "SP__S2"}))
	if err != nil || s.Table != "SP__S2" {
		t.Fatalf("roundtrip: %+v, %v", s, err)
	}
	m, err := DecodeSnapshotMeta(EncodeSnapshotMeta(SnapshotMeta{CreateSQL: "CREATE TABLE SP__S2 (SNO INTEGER)"}))
	if err != nil || m.CreateSQL != "CREATE TABLE SP__S2 (SNO INTEGER)" {
		t.Fatalf("meta roundtrip: %+v, %v", m, err)
	}
}

func TestSnapshotDecodeRejects(t *testing.T) {
	if _, err := DecodeSnapshot(nil); err == nil {
		t.Fatal("decode accepted an empty snapshot request")
	}
	if _, err := DecodeSnapshot(make([]byte, maxSnapshotName+1)); err == nil {
		t.Fatal("decode accepted an oversized table name")
	}
	if _, err := DecodeSnapshotMeta(nil); err == nil {
		t.Fatal("decode accepted an empty snapshot meta")
	}
}

func TestShardDoneDecodeRejects(t *testing.T) {
	neg := EncodeShardDone(ShardDone{PerShard: []int64{-1}})
	if _, err := DecodeShardDone(neg); err == nil {
		t.Fatal("decode accepted negative per-shard count")
	}
	trailing := append(EncodeShardDone(ShardDone{}), 0xFF)
	if _, err := DecodeShardDone(trailing); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}
