// Package wire defines the nestedsql network protocol: the length-prefixed
// binary frames spoken between cmd/nestedsqld (internal/server) and the Go
// client (internal/client).
//
// Every frame is
//
//	uint32 length (big endian) | byte type | payload
//
// where length counts the type byte plus the payload, so the smallest legal
// frame is length 1. The conversation is a strict handshake followed by
// request/response streams:
//
//	client → Hello      magic "NSQD" + version byte
//	server → Hello      magic + the version it will speak
//	client → Query      deadline, max-rows, strategy, parallelism, SQL
//	server → RowBatch*  column names + rows (zero or more frames)
//	server → Done       row count, page I/Os, fell-back flag
//	   or  → Error      taxonomy code, retry-after hint, message
//
// A client may pipeline the next Query before Done arrives; responses are
// strictly sequential. The per-request deadline and row budget ride in the
// Query frame and are mapped onto the engine's qctx limits; typed failures
// come back as Error frames whose code preserves the qctx/admission error
// taxonomy (an overload shed keeps its retry-after hint across the wire).
//
// Decoding is defensive: frames are size-capped, every varint and length is
// bounds-checked, and malformed input yields an error, never a panic — the
// decoder is fuzzed (FuzzDecodeFrame, FuzzFrameCorruption) on that contract.
//
// # Fault tolerance extensions
//
// Peers that both support it negotiate two extensions through the Hello
// exchange (see Hello.Flags): per-frame CRC32C checksums, so a byte
// corrupted in flight surfaces as ErrCorruptFrame instead of a garbled
// row, and Ping/Pong heartbeat frames, so an idle server can tell a dead
// peer from a quiet one. Hello frames themselves are always plain — they
// are what carries the negotiation — and a legacy 5-byte Hello (or a
// zero flags byte) downgrades the connection to the original framing, so
// version-1 peers interoperate unchanged.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/storage"
	"repro/internal/value"
)

// Version is the protocol version this package speaks. A server answers a
// client Hello with its own version; a client must disconnect on mismatch.
const Version = 1

// Magic opens every Hello payload, so a stray connection from some other
// protocol fails fast and explicitly.
const Magic = "NSQD"

// MaxFrame caps a frame's declared length (type byte + payload). Row
// batches are produced well under this; a peer declaring more is broken or
// hostile and the connection is dropped before allocating.
const MaxFrame = 16 << 20

// Frame types.
const (
	FrameHello    byte = 0x01
	FrameQuery    byte = 0x02
	FrameRowBatch byte = 0x03
	FrameDone     byte = 0x04
	FrameError    byte = 0x05
	// FramePing and FramePong are negotiated heartbeats (FeatureHeartbeat):
	// the payload is a uvarint sequence number, and a Pong echoes the Ping's.
	FramePing byte = 0x06
	FramePong byte = 0x07
)

// Feature bits carried in Hello.Flags. A peer requests the features it
// supports; the server answers with the subset it accepts, and both sides
// then speak only the agreed set for the rest of the connection.
const (
	// FeatureChecksum appends a CRC32C of type+payload to every frame.
	FeatureChecksum byte = 1 << 0
	// FeatureHeartbeat enables Ping/Pong dead-peer detection.
	FeatureHeartbeat byte = 1 << 1
)

// ErrCorruptFrame is the typed failure for a frame whose CRC32C trailer
// does not match its contents: the bytes were damaged in flight. It is a
// framing-level error — after it, the stream cannot be resynchronized and
// the connection must be dropped.
var ErrCorruptFrame = errors.New("wire: corrupt frame (checksum mismatch)")

// checksumLen is the CRC32C trailer appended to each frame when
// FeatureChecksum is negotiated. The checksum covers the type byte and
// payload (everything the length counts except the trailer itself) and
// travels big-endian.
const checksumLen = 4

// castagnoli is the CRC32C polynomial table; Castagnoli has hardware
// support on amd64/arm64, so the per-frame cost is a few ns per KiB.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Strategy bytes carried in the Query frame. They mirror the engine's
// strategies without importing it, so both peers share one tiny vocabulary.
const (
	StrategyDefault   byte = 0 // server default (normally NEST-JA2 transform)
	StrategyNested    byte = 1 // nested iteration
	StrategyTransform byte = 2 // NEST-JA2 transform
	StrategyKim       byte = 3 // Kim's NEST-JA (the buggy variant, for demos)
)

// Codec is one connection's framing configuration, fixed by the Hello
// negotiation. The zero value is the original plain framing, which is
// what both handshake directions are always read and written with.
type Codec struct {
	// Checksums appends/verifies a CRC32C trailer on every frame.
	Checksums bool
}

// WriteFrame writes one frame under this codec's framing.
func (c Codec) WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if !c.Checksums {
		return WriteFrame(w, typ, payload)
	}
	n := len(payload) + 1 + checksumLen
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", n)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	crc := crc32.Update(crc32.Checksum(hdr[4:5], castagnoli), castagnoli, payload)
	var tr [checksumLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	_, err := w.Write(tr[:])
	return err
}

// ReadFrame reads one frame under this codec's framing. With checksums
// on, a trailer mismatch returns an error satisfying
// errors.Is(err, ErrCorruptFrame).
func (c Codec) ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	if !c.Checksums {
		return ReadFrame(r)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1+checksumLen || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	body := buf[:n-checksumLen]
	want := binary.BigEndian.Uint32(buf[n-checksumLen:])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return 0, nil, fmt.Errorf("wire: frame type 0x%02x crc %08x != %08x: %w",
			body[0], got, want, ErrCorruptFrame)
	}
	return body[0], body[1:], nil
}

// WriteFrame writes one frame (type byte + payload) with its length
// prefix, in the plain (pre-negotiation) framing.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds MaxFrame", len(payload)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one plain length-prefixed frame, enforcing MaxFrame
// before allocating the payload.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Hello is the handshake payload in both directions. Flags carries the
// Feature* bits: a client requests, the server answers with the granted
// subset. Legacy marks the original 5-byte payload (no flags byte); a
// legacy Hello is answered in kind and negotiates nothing, which is how
// version-1 peers keep working.
type Hello struct {
	Version byte
	Flags   byte
	Legacy  bool
}

// EncodeHello builds a Hello payload.
func EncodeHello(h Hello) []byte {
	p := append([]byte(Magic), h.Version)
	if h.Legacy {
		return p
	}
	return append(p, h.Flags)
}

// DecodeHello parses a Hello payload, accepting both the legacy 5-byte
// form and the extended form with a trailing flags byte.
func DecodeHello(p []byte) (Hello, error) {
	if len(p) < len(Magic)+1 || len(p) > len(Magic)+2 || string(p[:len(Magic)]) != Magic {
		return Hello{}, fmt.Errorf("wire: bad hello")
	}
	h := Hello{Version: p[len(Magic)]}
	if len(p) == len(Magic)+1 {
		h.Legacy = true
	} else {
		h.Flags = p[len(Magic)+1]
	}
	return h, nil
}

// EncodePing builds a Ping (or Pong) payload: a uvarint sequence number.
func EncodePing(seq uint64) []byte {
	return binary.AppendUvarint(nil, seq)
}

// DecodePing parses a Ping/Pong payload.
func DecodePing(p []byte) (uint64, error) {
	seq, n := binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return 0, fmt.Errorf("wire: bad heartbeat payload")
	}
	return seq, nil
}

// Query is a request to run one SQL statement. TimeoutMicros and MaxRows
// are the caller's lifecycle limits (0 = none, though the server may cap
// both); Strategy and Parallelism select the evaluation path, with
// StrategyDefault / Parallelism 0 deferring to the server's configuration.
type Query struct {
	TimeoutMicros int64
	MaxRows       int64
	Strategy      byte
	Parallelism   int64
	SQL           string
}

// EncodeQuery builds a Query payload.
func EncodeQuery(q Query) []byte {
	p := binary.AppendVarint(nil, q.TimeoutMicros)
	p = binary.AppendVarint(p, q.MaxRows)
	p = append(p, q.Strategy)
	p = binary.AppendVarint(p, q.Parallelism)
	return append(p, q.SQL...)
}

// DecodeQuery parses a Query payload.
func DecodeQuery(p []byte) (Query, error) {
	var q Query
	var err error
	if q.TimeoutMicros, p, err = getVarint(p, "timeout"); err != nil {
		return q, err
	}
	if q.MaxRows, p, err = getVarint(p, "max-rows"); err != nil {
		return q, err
	}
	if len(p) < 1 {
		return q, fmt.Errorf("wire: query missing strategy")
	}
	q.Strategy, p = p[0], p[1:]
	if q.Parallelism, p, err = getVarint(p, "parallelism"); err != nil {
		return q, err
	}
	q.SQL = string(p)
	return q, nil
}

// RowBatch is one chunk of a streamed result. Every batch repeats the
// column names, which keeps the decoder stateless (an empty result is one
// batch with zero rows, so clients always learn the columns).
type RowBatch struct {
	Columns []string
	Rows    []storage.Tuple
}

// maxCols and maxBatchRows bound the counts a decoder will believe before
// reading the corresponding data, so a short hostile payload cannot demand
// a huge allocation.
const (
	maxCols      = 1 << 12
	maxBatchRows = 1 << 20
)

// EncodeRowBatch builds a RowBatch payload.
func EncodeRowBatch(b RowBatch) []byte {
	p := binary.AppendUvarint(nil, uint64(len(b.Columns)))
	for _, c := range b.Columns {
		p = appendString(p, c)
	}
	p = binary.AppendUvarint(p, uint64(len(b.Rows)))
	for _, row := range b.Rows {
		for _, v := range row {
			p = AppendValue(p, v)
		}
	}
	return p
}

// DecodeRowBatch parses a RowBatch payload.
func DecodeRowBatch(p []byte) (RowBatch, error) {
	var b RowBatch
	ncols, p, err := getUvarint(p, "column count")
	if err != nil {
		return b, err
	}
	if ncols > maxCols {
		return b, fmt.Errorf("wire: %d columns exceeds limit", ncols)
	}
	b.Columns = make([]string, ncols)
	for i := range b.Columns {
		if b.Columns[i], p, err = getString(p, "column name"); err != nil {
			return b, err
		}
	}
	nrows, p, err := getUvarint(p, "row count")
	if err != nil {
		return b, err
	}
	if nrows > maxBatchRows {
		return b, fmt.Errorf("wire: %d rows exceeds batch limit", nrows)
	}
	if nrows > 0 && ncols == 0 {
		return b, fmt.Errorf("wire: rows without columns")
	}
	// Rows are allocated as they parse out, so a huge declared count backed
	// by no bytes fails on the first missing value, not after a giant make.
	for r := uint64(0); r < nrows; r++ {
		row := make(storage.Tuple, ncols)
		for c := range row {
			if row[c], p, err = DecodeValue(p); err != nil {
				return b, err
			}
		}
		b.Rows = append(b.Rows, row)
	}
	if len(p) != 0 {
		return b, fmt.Errorf("wire: %d trailing bytes after row batch", len(p))
	}
	return b, nil
}

// Done ends a successful result stream.
type Done struct {
	Rows     int64
	Reads    int64
	Writes   int64
	FellBack bool
}

// EncodeDone builds a Done payload.
func EncodeDone(d Done) []byte {
	p := binary.AppendVarint(nil, d.Rows)
	p = binary.AppendVarint(p, d.Reads)
	p = binary.AppendVarint(p, d.Writes)
	var flags byte
	if d.FellBack {
		flags |= 1
	}
	return append(p, flags)
}

// DecodeDone parses a Done payload.
func DecodeDone(p []byte) (Done, error) {
	var d Done
	var err error
	if d.Rows, p, err = getVarint(p, "done rows"); err != nil {
		return d, err
	}
	if d.Reads, p, err = getVarint(p, "done reads"); err != nil {
		return d, err
	}
	if d.Writes, p, err = getVarint(p, "done writes"); err != nil {
		return d, err
	}
	if len(p) != 1 {
		return d, fmt.Errorf("wire: bad done flags")
	}
	d.FellBack = p[0]&1 != 0
	return d, nil
}

// Value codec: one kind byte, then a payload shaped by the kind. Strings
// carry a length prefix (unlike the gob codec in internal/value, which can
// rely on gob's own framing) so many values can sit in one batch.

// AppendValue appends the wire encoding of v.
func AppendValue(p []byte, v value.Value) []byte {
	switch v.Kind() {
	case value.KindNull:
		return append(p, byte(value.KindNull))
	case value.KindInt:
		p = append(p, byte(value.KindInt))
		return binary.AppendVarint(p, v.Int())
	case value.KindDate:
		// Dates travel as year*10000 + month*100 + day, mirroring the
		// chronological integer encoding internal/value uses.
		d := v.DateOf()
		p = append(p, byte(value.KindDate))
		return binary.AppendVarint(p, int64(d.Year())*10000+int64(d.Month())*100+int64(d.Day()))
	case value.KindFloat:
		p = append(p, byte(value.KindFloat))
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(v.Float()))
		return append(p, buf[:]...)
	case value.KindString:
		p = append(p, byte(value.KindString))
		return appendString(p, v.Str())
	default:
		// Unreachable for well-formed values; encode as NULL rather than
		// corrupting the stream.
		return append(p, byte(value.KindNull))
	}
}

// DecodeValue parses one value, returning the remaining bytes.
func DecodeValue(p []byte) (value.Value, []byte, error) {
	if len(p) == 0 {
		return value.Null, nil, fmt.Errorf("wire: missing value")
	}
	kind := value.Kind(p[0])
	p = p[1:]
	switch kind {
	case value.KindNull:
		return value.Null, p, nil
	case value.KindInt, value.KindDate:
		i, n := binary.Varint(p)
		if n <= 0 {
			return value.Null, nil, fmt.Errorf("wire: bad integer value")
		}
		if kind == value.KindDate {
			d, err := value.NewDate(int(i/10000), int(i/100)%100, int(i%100))
			if err != nil {
				return value.Null, nil, fmt.Errorf("wire: bad date value: %w", err)
			}
			return value.NewDateValue(d), p[n:], nil
		}
		return value.NewInt(i), p[n:], nil
	case value.KindFloat:
		if len(p) < 8 {
			return value.Null, nil, fmt.Errorf("wire: bad float value")
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(p[:8]))
		return value.NewFloat(f), p[8:], nil
	case value.KindString:
		s, rest, err := getString(p, "string value")
		if err != nil {
			return value.Null, nil, err
		}
		return value.NewString(s), rest, nil
	default:
		return value.Null, nil, fmt.Errorf("wire: unknown value kind %d", kind)
	}
}

func appendString(p []byte, s string) []byte {
	p = binary.AppendUvarint(p, uint64(len(s)))
	return append(p, s...)
}

func getString(p []byte, what string) (string, []byte, error) {
	n, p, err := getUvarint(p, what)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(p)) < n {
		return "", nil, fmt.Errorf("wire: truncated %s", what)
	}
	return string(p[:n]), p[n:], nil
}

func getVarint(p []byte, what string) (int64, []byte, error) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: bad %s", what)
	}
	return v, p[n:], nil
}

func getUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: bad %s", what)
	}
	return v, p[n:], nil
}
