package admission

import (
	"testing"
	"time"
)

// newTestBreaker returns a breaker with a controllable clock.
func newTestBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	b := NewBreaker(cfg)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripAndReprobe(t *testing.T) {
	b, now := newTestBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second})

	// Faults below the threshold keep the breaker closed.
	b.ReportFault()
	b.ReportFault()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("breaker opened below threshold: %s", b.State())
	}
	// A success resets the consecutive count.
	b.ReportOK()
	b.ReportFault()
	b.ReportFault()
	if b.State() != "closed" {
		t.Fatal("ReportOK did not reset the fault count")
	}
	// The third consecutive fault trips it.
	b.ReportFault()
	if b.State() != "open" || b.Trips() != 1 {
		t.Fatalf("state=%s trips=%d, want open/1", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed parallel")
	}

	// After the cooldown exactly one probe gets through.
	*now = now.Add(time.Second)
	if !b.Allow() || b.State() != "half-open" {
		t.Fatalf("cooldown elapsed but no probe allowed (state %s)", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller got a probe slot while one is in flight")
	}
	// Probe fault re-opens for a fresh cooldown.
	b.ReportFault()
	if b.State() != "open" || b.Trips() != 2 {
		t.Fatalf("state=%s trips=%d after failed probe, want open/2", b.State(), b.Trips())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed parallel before cooldown")
	}

	// Second probe succeeds and closes the breaker.
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.ReportOK()
	if b.State() != "closed" {
		t.Fatalf("state=%s after successful probe, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker denied parallel")
	}
}

func TestBreakerHalfOpenSecondCaller(t *testing.T) {
	b, now := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.ReportFault()
	*now = now.Add(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied")
	}
	// While the probe is out, another success report (e.g. a sequential
	// run) must not release the probe slot for parallel.
	if b.Allow() {
		t.Fatal("probe slot double-issued")
	}
	b.ReportOK()
	if !b.Allow() {
		t.Fatal("breaker still denying after probe success")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 10; i++ {
		b.ReportFault()
	}
	if !b.Allow() || b.State() != "disabled" {
		t.Fatalf("disabled breaker tripped: %s", b.State())
	}
}
