package admission

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/qctx"
)

func TestAdmitUnlimited(t *testing.T) {
	c := NewController(Config{})
	var tickets []*Ticket
	for i := 0; i < 32; i++ {
		tk, err := c.Admit(Request{})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	s := c.Stats()
	if s.Running != 32 || s.Admitted != 32 {
		t.Fatalf("stats = %+v, want 32 running/admitted", s)
	}
	for _, tk := range tickets {
		tk.Release()
		tk.Release() // idempotent
	}
	if s := c.Stats(); s.Running != 0 {
		t.Fatalf("running = %d after release, want 0", s.Running)
	}
}

func TestQueueFIFOAndShed(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 2})
	first, err := c.Admit(Request{})
	if err != nil {
		t.Fatal(err)
	}

	// Two waiters fit in the queue; admit them from goroutines and track
	// the order grants arrive in.
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := make(chan struct{}, 2)
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ready <- struct{}{}
			tk, err := c.Admit(Request{})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			tk.Release()
		}(i)
		<-ready
		// Wait until the waiter is actually queued so FIFO order is
		// deterministic.
		for {
			if c.Stats().Waiting >= i {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Queue is now full: the next arrival is shed with a typed error.
	_, err = c.Admit(Request{})
	if !errors.Is(err, qctx.ErrOverloaded) {
		t.Fatalf("full-queue admit err = %v, want ErrOverloaded", err)
	}
	var ov *qctx.OverloadError
	if !errors.As(err, &ov) || ov.RetryAfter <= 0 {
		t.Fatalf("shed error %v lacks retry-after hint", err)
	}

	first.Release()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order = %v, want [1 2] (FIFO)", order)
	}
	if s := c.Stats(); s.Shed != 1 || s.Running != 0 {
		t.Fatalf("stats = %+v, want 1 shed, 0 running", s)
	}
}

func TestQueueWaitCountsAgainstDeadline(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 4})
	blocker, err := c.Admit(Request{})
	if err != nil {
		t.Fatal(err)
	}
	// This query's whole deadline elapses in the queue.
	start := time.Now()
	_, err = c.Admit(Request{Timeout: 20 * time.Millisecond})
	if !errors.Is(err, qctx.ErrQueryTimeout) {
		t.Fatalf("queued-past-deadline admit err = %v, want ErrQueryTimeout", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("admit returned after %v, should have waited out the deadline", d)
	}
	if s := c.Stats(); s.QueueTimeouts != 1 {
		t.Fatalf("queue timeouts = %d, want 1", s.QueueTimeouts)
	}
	blocker.Release()
	if s := c.Stats(); s.Running != 0 || s.Waiting != 0 {
		t.Fatalf("stats = %+v, want idle", s)
	}

	// A ticket granted with time to spare reports its remaining deadline.
	tk, err := c.Admit(Request{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rem, ok := tk.Remaining(); !ok || rem <= 0 || rem > time.Second {
		t.Fatalf("Remaining() = %v, %v", rem, ok)
	}
	tk.Release()
}

func TestPreExpiredDeadlineRejected(t *testing.T) {
	c := NewController(Config{})
	_, err := c.Admit(Request{Timeout: -time.Millisecond})
	if !errors.Is(err, qctx.ErrQueryTimeout) {
		t.Fatalf("pre-expired admit err = %v, want ErrQueryTimeout", err)
	}
	if s := c.Stats(); s.Admitted != 0 || s.Running != 0 {
		t.Fatalf("pre-expired query was admitted: %+v", s)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 1})
	blocker, err := c.Admit(Request{})
	if err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(Request{Cancel: cancel})
		done <- err
	}()
	for c.Stats().Waiting == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	close(cancel)
	if err := <-done; !errors.Is(err, qctx.ErrCanceled) {
		t.Fatalf("canceled-in-queue err = %v, want ErrCanceled", err)
	}
	// Pre-closed cancel never enters the queue.
	if _, err := c.Admit(Request{Cancel: cancel}); !errors.Is(err, qctx.ErrCanceled) {
		t.Fatalf("pre-canceled admit err = %v, want ErrCanceled", err)
	}
	blocker.Release()
}

func TestPoolLeasing(t *testing.T) {
	c := NewController(Config{PoolBytes: 1000, DefaultLease: 400, MinLease: 100})

	// Full lease while the pool is empty.
	a, err := c.Admit(Request{})
	if err != nil || a.Lease() != 400 || a.Degraded() {
		t.Fatalf("first grant: lease=%d degraded=%v err=%v", a.Lease(), a.Degraded(), err)
	}
	// Explicit request larger than default.
	b, err := c.Admit(Request{MemBytes: 500})
	if err != nil || b.Lease() != 500 || b.Degraded() {
		t.Fatalf("second grant: lease=%d degraded=%v err=%v", b.Lease(), b.Degraded(), err)
	}
	// Only 100 left: degraded grant at the remainder.
	d, err := c.Admit(Request{})
	if err != nil || d.Lease() != 100 || !d.Degraded() {
		t.Fatalf("third grant: lease=%d degraded=%v err=%v", d.Lease(), d.Degraded(), err)
	}
	// Pool exhausted: next query waits (no queue depth configured → shed).
	if _, err := c.Admit(Request{}); !errors.Is(err, qctx.ErrOverloaded) {
		t.Fatalf("exhausted-pool admit err = %v, want ErrOverloaded", err)
	}
	s := c.Stats()
	if s.PoolUsed != 1000 || s.PoolPeak != 1000 || s.Degraded != 1 {
		t.Fatalf("pool stats = %+v", s)
	}
	a.Release()
	b.Release()
	d.Release()
	if s := c.Stats(); s.PoolUsed != 0 {
		t.Fatalf("pool used = %d after release, want 0", s.PoolUsed)
	}

	// A request bigger than the whole pool runs degraded at pool size
	// rather than overcommitting.
	huge, err := c.Admit(Request{MemBytes: 5000})
	if err != nil || huge.Lease() != 1000 || !huge.Degraded() {
		t.Fatalf("oversized grant: lease=%d degraded=%v err=%v", huge.Lease(), huge.Degraded(), err)
	}
	huge.Release()
}

func TestPoolNeverOvercommitsUnderLoad(t *testing.T) {
	const pool = 1 << 20
	c := NewController(Config{MaxConcurrent: 8, QueueDepth: 64, PoolBytes: pool})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := c.Admit(Request{MemBytes: int64(1+i%7) * (pool / 16), Timeout: 2 * time.Second})
			if err != nil {
				if !errors.Is(err, qctx.ErrOverloaded) && !errors.Is(err, qctx.ErrQueryTimeout) {
					failures.Add(1)
				}
				return
			}
			time.Sleep(time.Duration(i%3) * time.Millisecond)
			tk.Release()
		}(i)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d admits failed with unexpected errors", failures.Load())
	}
	s := c.Stats()
	if s.PoolPeak > pool {
		t.Fatalf("pool peak %d exceeded pool %d", s.PoolPeak, pool)
	}
	if s.Running != 0 || s.PoolUsed != 0 || s.Waiting != 0 {
		t.Fatalf("controller not idle after load: %+v", s)
	}
}

func TestRetryDelayBackoff(t *testing.T) {
	c := NewController(Config{RetryMax: 3, RetryBase: 4 * time.Millisecond, RetryCap: 10 * time.Millisecond, Seed: 42})
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 10 * time.Millisecond}
	for attempt, base := range want {
		d, ok := c.RetryDelay(attempt)
		if !ok {
			t.Fatalf("attempt %d: RetryDelay refused, want allowed", attempt)
		}
		if d < base/2 || d > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
		}
	}
	if _, ok := c.RetryDelay(3); ok {
		t.Fatal("attempt 3 allowed, want refused (RetryMax=3)")
	}
	if s := c.Stats(); s.Retries != 3 {
		t.Fatalf("retries = %d, want 3", s.Retries)
	}
}

func TestDrain(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 1, QueueDepth: 2})
	running, err := c.Admit(Request{})
	if err != nil {
		t.Fatal(err)
	}
	qc := qctx.New(qctx.Limits{})
	running.Bind(qc)

	// One waiter in the queue; drain must shed it.
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.Admit(Request{})
		waiterErr <- err
	}()
	for c.Stats().Waiting == 0 {
		time.Sleep(100 * time.Microsecond)
	}

	// The running query ignores the drain deadline, so drain cancels it
	// through the bound qctx; we release on cancellation like the engine
	// does.
	go func() {
		<-qc.Done()
		running.Release()
	}()
	if err := c.Drain(20 * time.Millisecond); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-waiterErr; !errors.Is(err, qctx.ErrOverloaded) {
		t.Fatalf("shed waiter err = %v, want ErrOverloaded", err)
	}
	if err := qc.Err(); !errors.Is(err, qctx.ErrCanceled) {
		t.Fatalf("straggler cause = %v, want ErrCanceled", err)
	}
	s := c.Stats()
	if !s.Draining || s.Running != 0 || s.DrainCanceled != 1 {
		t.Fatalf("post-drain stats = %+v", s)
	}

	// Admission stays closed until Resume.
	if _, err := c.Admit(Request{}); !errors.Is(err, qctx.ErrOverloaded) {
		t.Fatalf("admit while draining err = %v, want ErrOverloaded", err)
	}
	c.Resume()
	tk, err := c.Admit(Request{})
	if err != nil {
		t.Fatalf("admit after resume: %v", err)
	}
	tk.Release()
}

func TestDrainWaitsForInFlight(t *testing.T) {
	c := NewController(Config{})
	tk, err := c.Admit(Request{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		tk.Release()
	}()
	if err := c.Drain(time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s := c.Stats(); s.DrainCanceled != 0 {
		t.Fatalf("polite drain canceled %d queries, want 0", s.DrainCanceled)
	}
}

func TestStatsString(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 2, PoolBytes: 1 << 20})
	tk, _ := c.Admit(Request{})
	defer tk.Release()
	out := c.Stats().String()
	for _, frag := range []string{"1 running", "memory pool", "breaker: closed"} {
		if !contains(out, frag) {
			t.Errorf("stats %q missing %q", out, frag)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Hammer the controller from many goroutines mixing admits, timeouts,
// cancels, and releases; the invariant is that it ends idle with
// consistent counters. Run with -race.
func TestControllerStress(t *testing.T) {
	c := NewController(Config{MaxConcurrent: 4, QueueDepth: 8, PoolBytes: 1 << 16, Seed: 7})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				req := Request{MemBytes: int64(g%5) * 1024, Timeout: 10 * time.Millisecond}
				if g%4 == 0 {
					cancel := make(chan struct{})
					req.Cancel = cancel
					time.AfterFunc(time.Duration(i%5)*time.Millisecond, func() { close(cancel) })
				}
				tk, err := c.Admit(req)
				if err != nil {
					if !errors.Is(err, qctx.ErrOverloaded) && !errors.Is(err, qctx.ErrQueryTimeout) &&
						!errors.Is(err, qctx.ErrCanceled) {
						t.Errorf("unexpected admit error: %v", err)
					}
					continue
				}
				if g%3 == 0 {
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
				}
				tk.Release()
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Running != 0 || s.Waiting != 0 || s.PoolUsed != 0 {
		t.Fatalf("controller not idle: %+v", s)
	}
	if s.PoolPeak > 1<<16 {
		t.Fatalf("pool peak %d exceeded pool", s.PoolPeak)
	}
	if s.Admitted == 0 {
		t.Fatal("nothing was admitted")
	}
}

func ExampleStats_String() {
	c := NewController(Config{MaxConcurrent: 4})
	fmt.Println(c.Stats().String())
	// Output:
	// admission: 0 running, 0 queued, 0 admitted, 0 shed, 0 queue timeouts
	// retries: 0 transient; breaker: closed, 0 trips
}
