package admission

import (
	"sync"
	"time"
)

// BreakerConfig sizes the parallel-path circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive parallel-worker faults trip the
	// breaker open; 0 picks the default (3), negative disables it.
	Threshold int
	// Cooldown is how long the breaker stays open before letting one
	// probe query try the parallel path again; 0 picks the default (2s).
	Cooldown time.Duration
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a classic three-state circuit breaker guarding the parallel
// execution path. Closed: parallel allowed, consecutive faults counted.
// Open: parallel denied until the cooldown elapses. Half-open: exactly
// one probe query gets the parallel path; its outcome closes or re-opens
// the breaker. Queries denied the parallel path degrade to sequential
// plans (or fail with qctx.ErrCircuitOpen when parallelism was forced).
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
	trips    int64
}

// NewBreaker creates a breaker; see BreakerConfig for defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold == 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 2 * time.Second
	}
	return &Breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown, now: time.Now}
}

// Allow reports whether the caller may take the parallel path. In the
// half-open state only one caller at a time gets a probe slot; it must
// report its outcome (ReportFault / ReportOK) to release the slot.
func (b *Breaker) Allow() bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// ReportFault records a parallel-worker fault. Enough consecutive faults
// trip the breaker; a fault during a half-open probe re-opens it for a
// fresh cooldown.
func (b *Breaker) ReportFault() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
			b.fails = 0
			b.trips++
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	}
}

// ReportOK records a parallel success: it resets the consecutive-fault
// count, and a successful half-open probe closes the breaker.
func (b *Breaker) ReportOK() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails = 0
	case breakerHalfOpen:
		b.state = breakerClosed
		b.probing = false
		b.fails = 0
	}
}

// State renders the breaker state for stats output.
func (b *Breaker) State() string {
	if b.threshold < 0 {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
