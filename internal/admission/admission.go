// Package admission is the engine's concurrency gateway: every query
// passes through a Controller before any operator opens. The controller
// bounds how many queries run at once, queues a bounded number of
// arrivals behind them (queue time counts against the query's own
// deadline), sheds load with a typed overload error once the queue is
// full, and leases per-query memory budgets from one global pool so
// concurrent queries can never overcommit the configured memory, only
// degrade (smaller lease, sequential plan) or wait.
//
// It also owns the two recovery mechanisms that sit above a single
// query's lifecycle: a capped exponential-backoff retry policy for
// transient storage faults, and a circuit breaker (breaker.go) that
// trips the parallel execution path to sequential-only after repeated
// worker faults and re-probes after a cooldown.
//
// Finally it implements graceful drain: stop admitting, let in-flight
// queries finish under a drain deadline, then cancel stragglers through
// the qctx each ticket is bound to. The queue is strictly FIFO — a
// large-lease query at the head waits rather than being overtaken, so
// heavy queries cannot starve behind a stream of light ones.
package admission

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/qctx"
)

// Config sizes a Controller. The zero value of any field picks the
// documented default; a zero MaxConcurrent means unlimited concurrency
// and a zero PoolBytes means no global memory pool.
type Config struct {
	// MaxConcurrent bounds the queries running at once; 0 = unlimited.
	MaxConcurrent int
	// QueueDepth bounds how many admitted-but-waiting queries may queue
	// behind the running ones; arrivals beyond it are shed with
	// qctx.ErrOverloaded. 0 means no queue: shed as soon as saturated.
	QueueDepth int
	// PoolBytes is the global memory pool leased out as per-query
	// budgets; 0 disables pooling (queries keep their own budgets).
	PoolBytes int64
	// DefaultLease is granted to queries that request no explicit memory
	// budget; 0 derives PoolBytes/MaxConcurrent (or PoolBytes/4 when
	// concurrency is unlimited).
	DefaultLease int64
	// MinLease is the smallest degraded lease worth running with; a
	// query that cannot get even MinLease waits instead. 0 derives
	// DefaultLease/4.
	MinLease int64

	// RetryMax bounds transient-fault retries per query; 0 disables.
	RetryMax int
	// RetryBase is the first backoff delay (default 2ms); RetryCap caps
	// the exponential growth (default 250ms).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Seed seeds the backoff jitter; 0 uses a time-derived seed.
	Seed int64

	// Breaker configures the parallel-path circuit breaker.
	Breaker BreakerConfig
}

func (c Config) defaultLease() int64 {
	if c.DefaultLease > 0 {
		return c.DefaultLease
	}
	div := int64(4)
	if c.MaxConcurrent > 0 {
		div = int64(c.MaxConcurrent)
	}
	return c.PoolBytes / div
}

func (c Config) minLease() int64 {
	if c.MinLease > 0 {
		return c.MinLease
	}
	if l := c.defaultLease() / 4; l > 0 {
		return l
	}
	return 1
}

// Request describes one query asking to run.
type Request struct {
	// Timeout is the query's wall-clock limit; queue time counts
	// against it, and a query whose deadline expires while queued (or
	// arrives pre-expired) is rejected with qctx.ErrQueryTimeout
	// before any operator opens. 0 means no deadline.
	Timeout time.Duration
	// MemBytes is the query's requested memory budget; 0 asks for the
	// controller's default lease (when a pool is configured).
	MemBytes int64
	// Cancel, when non-nil, aborts the queue wait with qctx.ErrCanceled
	// as soon as it is closed.
	Cancel <-chan struct{}
}

// grantResult is what a queued waiter eventually receives.
type grantResult struct {
	lease    int64
	degraded bool
	pressure bool
	err      error // set when the waiter is shed (drain)
}

// waiter is one queued admission request.
type waiter struct {
	want  int64
	grant chan grantResult // buffered 1; written exactly once
}

// Controller is the admission gateway. All methods are safe for
// concurrent use.
type Controller struct {
	cfg     Config
	breaker *Breaker

	mu          sync.Mutex
	running     int
	queue       []*waiter
	poolUsed    int64
	poolPeak    int64
	draining    bool
	spillBacked bool
	active      map[*Ticket]struct{}
	rng         *rand.Rand

	// Counters (under mu).
	admitted       int64
	shed           int64
	queueTimeouts  int64
	degraded       int64
	pressureGrants int64
	retries        int64
	drainCanceled  int64
	// ewmaRun tracks recent query durations for the retry-after hint.
	ewmaRun time.Duration
}

// NewController creates a controller from a config.
func NewController(cfg Config) *Controller {
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 2 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 250 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Controller{
		cfg:     cfg,
		breaker: NewBreaker(cfg.Breaker),
		active:  make(map[*Ticket]struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Config returns the controller's (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetSpillBacked tells the memory pool that queries can degrade to
// disk-backed execution instead of failing on a tiny budget. Under
// pressure the pool then grants whatever remains (a "pressure" lease,
// below MinLease) rather than queuing the arrival — a spill-capable
// lessee makes progress on any positive budget.
func (c *Controller) SetSpillBacked(on bool) {
	c.mu.Lock()
	c.spillBacked = on
	c.mu.Unlock()
}

// grantLocked decides whether a query wanting `want` lease bytes can run
// right now, and with how much. Callers hold c.mu.
func (c *Controller) grantLocked(want int64) (lease int64, degraded, pressure, ok bool) {
	if c.cfg.MaxConcurrent > 0 && c.running >= c.cfg.MaxConcurrent {
		return 0, false, false, false
	}
	if c.cfg.PoolBytes == 0 {
		return 0, false, false, true
	}
	if want <= 0 {
		want = c.cfg.defaultLease()
	}
	if want > c.cfg.PoolBytes {
		// The pool is the hard ceiling: a query asking for more than the
		// whole pool runs degraded at pool size rather than overcommit.
		want = c.cfg.PoolBytes
		degraded = true
	}
	free := c.cfg.PoolBytes - c.poolUsed
	switch {
	case free >= want:
		lease = want
	case free >= c.cfg.minLease():
		lease, degraded = free, true
	case c.spillBacked && free > 0:
		// Pressure grant: spill-backed queries degrade to disk rather
		// than fail on a tiny budget, so the nearly-exhausted pool hands
		// out its remainder instead of making the arrival wait.
		lease, degraded, pressure = free, true, true
	default:
		return 0, false, false, false
	}
	return lease, degraded, pressure, true
}

// admitLocked commits a grant and mints the ticket. When charge is true
// it also bumps the running count and pool usage; a waiter woken by
// wakeLocked already carries that reservation and passes false.
// Callers hold c.mu.
func (c *Controller) admitLocked(lease int64, degraded, pressure bool, timeout time.Duration, start time.Time, charge bool) *Ticket {
	if charge {
		c.running++
		c.poolUsed += lease
		if c.poolUsed > c.poolPeak {
			c.poolPeak = c.poolUsed
		}
	}
	c.admitted++
	if degraded {
		c.degraded++
	}
	if pressure {
		c.pressureGrants++
	}
	t := &Ticket{c: c, lease: lease, degraded: degraded, pressure: pressure, start: start}
	if timeout > 0 {
		t.deadline = start.Add(timeout)
	}
	c.active[t] = struct{}{}
	return t
}

// shedLocked builds the typed overload error with a retry-after hint
// derived from recent query durations. Callers hold c.mu.
func (c *Controller) shedLocked(reason string) error {
	c.shed++
	hint := c.ewmaRun
	if hint <= 0 {
		hint = 50 * time.Millisecond
	}
	return &qctx.OverloadError{Reason: reason, RetryAfter: hint}
}

// Admit asks to run one query. It returns a granted Ticket, or a typed
// error: qctx.ErrOverloaded (full queue, or draining), qctx.ErrQueryTimeout
// (the deadline expired while queued — including a pre-expired arrival),
// or qctx.ErrCanceled (the request's Cancel channel closed while queued).
// Queue order is FIFO.
func (c *Controller) Admit(req Request) (*Ticket, error) {
	start := time.Now()
	if req.Cancel != nil {
		select {
		case <-req.Cancel:
			return nil, qctx.ErrCanceled
		default:
		}
	}
	if req.Timeout < 0 {
		return nil, qctx.ErrQueryTimeout
	}

	c.mu.Lock()
	if c.draining {
		err := c.shedLocked("draining")
		c.mu.Unlock()
		return nil, err
	}
	if len(c.queue) == 0 {
		if lease, degraded, pressure, ok := c.grantLocked(req.MemBytes); ok {
			t := c.admitLocked(lease, degraded, pressure, req.Timeout, start, true)
			c.mu.Unlock()
			return t, nil
		}
	}
	if len(c.queue) >= c.cfg.QueueDepth {
		err := c.shedLocked("queue full")
		c.mu.Unlock()
		return nil, err
	}
	w := &waiter{want: req.MemBytes, grant: make(chan grantResult, 1)}
	c.queue = append(c.queue, w)
	c.mu.Unlock()

	var deadline <-chan time.Time
	if req.Timeout > 0 {
		timer := time.NewTimer(req.Timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case gr := <-w.grant:
		if gr.err != nil {
			return nil, gr.err
		}
		if req.Timeout > 0 && time.Since(start) >= req.Timeout {
			// Satellite-1 contract: a query whose deadline expired during
			// the queue wait must not run at all. Hand the grant back.
			c.mu.Lock()
			c.queueTimeouts++
			c.releaseResourcesLocked(gr.lease)
			c.mu.Unlock()
			return nil, qctx.ErrQueryTimeout
		}
		c.mu.Lock()
		t := c.admitLocked(gr.lease, gr.degraded, gr.pressure, req.Timeout, start, false)
		c.mu.Unlock()
		return t, nil
	case <-deadline:
		return nil, c.abandonWait(w, &c.queueTimeouts, qctx.ErrQueryTimeout)
	case <-req.Cancel:
		return nil, c.abandonWait(w, nil, qctx.ErrCanceled)
	}
}

// abandonWait removes a waiter that gave up (deadline, cancel). If a
// grant raced the abandonment, the granted resources are returned to the
// pool and the next waiter is woken.
func (c *Controller) abandonWait(w *waiter, counter *int64, cause error) error {
	c.mu.Lock()
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			if counter != nil {
				*counter++
			}
			c.mu.Unlock()
			return cause
		}
	}
	c.mu.Unlock()
	// Not queued anymore: a grant is in flight. Consume and return it.
	gr := <-w.grant
	if gr.err == nil {
		c.mu.Lock()
		if counter != nil {
			*counter++
		}
		c.releaseResourcesLocked(gr.lease)
		c.mu.Unlock()
	}
	return cause
}

// releaseResourcesLocked returns reserved capacity and wakes as many
// FIFO waiters as now fit. The grant reserves running+pool on behalf of
// the waiter so capacity cannot be double-issued between the release
// here and the waiter finishing its admit. Callers hold c.mu.
func (c *Controller) releaseResourcesLocked(lease int64) {
	c.running--
	c.poolUsed -= lease
	c.wakeLocked()
}

func (c *Controller) wakeLocked() {
	for len(c.queue) > 0 {
		w := c.queue[0]
		lease, degraded, pressure, ok := c.grantLocked(w.want)
		if !ok {
			return
		}
		c.queue = c.queue[1:]
		// Reserve on the waiter's behalf; Admit's grant path converts the
		// reservation into a real ticket (or hands it back on timeout).
		c.running++
		c.poolUsed += lease
		if c.poolUsed > c.poolPeak {
			c.poolPeak = c.poolUsed
		}
		w.grant <- grantResult{lease: lease, degraded: degraded, pressure: pressure}
	}
}

// release finishes one ticket: returns its capacity, folds its runtime
// into the retry-after EWMA, and wakes waiters.
func (c *Controller) release(t *Ticket) {
	dur := time.Since(t.start)
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.active, t)
	if c.ewmaRun == 0 {
		c.ewmaRun = dur
	} else {
		c.ewmaRun = (3*c.ewmaRun + dur) / 4
	}
	c.releaseResourcesLocked(t.lease)
}

// RetryDelay reports whether a transient-fault retry number `attempt`
// (0-based) is allowed, and the jittered backoff to sleep first:
// base·2^attempt capped at RetryCap, jittered to [d/2, d).
func (c *Controller) RetryDelay(attempt int) (time.Duration, bool) {
	if attempt >= c.cfg.RetryMax {
		return 0, false
	}
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retries++
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1)), true
}

// AllowParallel gates the parallel execution path through the circuit
// breaker; ReportParallelFault / ReportParallelOK feed it outcomes.
func (c *Controller) AllowParallel() bool      { return c.breaker.Allow() }
func (c *Controller) ReportParallelFault()     { c.breaker.ReportFault() }
func (c *Controller) ReportParallelOK()        { c.breaker.ReportOK() }
func (c *Controller) BreakerState() string     { return c.breaker.State() }

// Drain stops admission and waits for in-flight queries to finish. New
// arrivals and every queued waiter are shed with qctx.ErrOverloaded.
// Queries still running when the drain deadline passes are canceled
// through their bound qctx (qctx.ErrCanceled) and then given a short
// grace period to unwind; Drain errors if any survive even that.
// Admission stays closed afterwards until Resume.
func (c *Controller) Drain(timeout time.Duration) error {
	c.mu.Lock()
	c.draining = true
	for _, w := range c.queue {
		c.shed++
		w.grant <- grantResult{err: &qctx.OverloadError{Reason: "draining", RetryAfter: timeout}}
	}
	c.queue = nil
	c.mu.Unlock()

	if c.waitIdle(time.Now().Add(timeout)) {
		return nil
	}
	c.mu.Lock()
	n := int64(len(c.active))
	for t := range c.active {
		t.cancel()
	}
	c.drainCanceled += n
	c.mu.Unlock()

	grace := timeout
	if grace < 5*time.Second {
		grace = 5 * time.Second
	}
	if c.waitIdle(time.Now().Add(grace)) {
		return nil
	}
	c.mu.Lock()
	left := c.running
	c.mu.Unlock()
	return fmt.Errorf("admission: drain: %d queries still running after cancel", left)
}

// waitIdle polls until nothing is running or the deadline passes.
// Cancellation is cooperative and surfaces within one morsel of work, so
// millisecond polling is plenty and keeps the controller lock simple.
func (c *Controller) waitIdle(deadline time.Time) bool {
	for {
		c.mu.Lock()
		n := c.running
		c.mu.Unlock()
		if n == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

// Resume re-opens admission after a Drain.
func (c *Controller) Resume() {
	c.mu.Lock()
	c.draining = false
	c.mu.Unlock()
}

// Draining reports whether admission is closed.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Stats is a snapshot of the admission counters, for the REPL's \stats
// and for tests.
type Stats struct {
	Running, Waiting                 int
	Admitted, Shed                   int64
	QueueTimeouts, Degraded, Retries int64
	PressureGrants                   int64
	DrainCanceled                    int64
	PoolBytes, PoolUsed, PoolPeak    int64
	BreakerState                     string
	BreakerTrips                     int64
	Draining                         bool
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Running:       c.running,
		Waiting:       len(c.queue),
		Admitted:      c.admitted,
		Shed:          c.shed,
		QueueTimeouts:  c.queueTimeouts,
		Degraded:       c.degraded,
		Retries:        c.retries,
		PressureGrants: c.pressureGrants,
		DrainCanceled:  c.drainCanceled,
		PoolBytes:     c.cfg.PoolBytes,
		PoolUsed:      c.poolUsed,
		PoolPeak:      c.poolPeak,
		BreakerState:  c.breaker.State(),
		BreakerTrips:  c.breaker.Trips(),
		Draining:      c.draining,
	}
}

// String renders the snapshot as the REPL's \stats block.
func (s Stats) String() string {
	b := fmt.Sprintf("admission: %d running, %d queued, %d admitted, %d shed, %d queue timeouts\n",
		s.Running, s.Waiting, s.Admitted, s.Shed, s.QueueTimeouts)
	if s.PoolBytes > 0 {
		b += fmt.Sprintf("memory pool: %d/%d bytes leased (peak %d), %d degraded grants (%d under pressure)\n",
			s.PoolUsed, s.PoolBytes, s.PoolPeak, s.Degraded, s.PressureGrants)
	}
	b += fmt.Sprintf("retries: %d transient; breaker: %s, %d trips", s.Retries, s.BreakerState, s.BreakerTrips)
	if s.Draining {
		b += "; DRAINING"
	}
	return b
}

// Ticket is one granted admission. Release must be called exactly when
// the query ends (it is idempotent); Bind attaches the query's lifecycle
// context so a drain can cancel the query cooperatively.
type Ticket struct {
	c        *Controller
	lease    int64
	degraded bool
	pressure bool
	start    time.Time
	deadline time.Time

	mu       sync.Mutex
	qc       *qctx.QueryContext
	released bool
}

// Lease is the granted memory budget in bytes (0 = no pool configured).
func (t *Ticket) Lease() int64 { return t.lease }

// Degraded reports that the grant was reduced below the requested (or
// default) lease by pool pressure; the engine responds by preferring
// sequential plans, which buffer less.
func (t *Ticket) Degraded() bool { return t.degraded }

// Pressure reports that the lease came from a nearly-exhausted pool and
// is below MinLease — granted only because spill-backed execution can
// degrade to disk instead of failing.
func (t *Ticket) Pressure() bool { return t.pressure }

// Remaining reports the time left until the query's deadline; ok is
// false when the request carried no deadline. Admission guarantees a
// granted ticket has positive remaining time.
func (t *Ticket) Remaining() (time.Duration, bool) {
	if t.deadline.IsZero() {
		return 0, false
	}
	return time.Until(t.deadline), true
}

// Bind attaches the query's lifecycle context for drain cancellation.
// Safe on a nil ticket (no-op), so ungoverned call sites need no guard.
func (t *Ticket) Bind(qc *qctx.QueryContext) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.qc = qc
	t.mu.Unlock()
}

// cancel cancels the bound query (drain straggler path).
func (t *Ticket) cancel() {
	t.mu.Lock()
	qc := t.qc
	t.mu.Unlock()
	qc.Cancel(qctx.ErrCanceled)
}

// Release returns the ticket's capacity to the controller. Idempotent.
func (t *Ticket) Release() {
	t.mu.Lock()
	if t.released {
		t.mu.Unlock()
		return
	}
	t.released = true
	t.mu.Unlock()
	t.c.release(t)
}
