package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

func intRow(vals ...int64) storage.Tuple {
	t := make(storage.Tuple, len(vals))
	for i, v := range vals {
		t[i] = value.NewInt(v)
	}
	return t
}

// appendN appends n insert records and waits for each commit.
func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		c, err := l.Append(Record{Type: RecInsert, Table: "T", Rows: []storage.Tuple{intRow(int64(i), int64(i*10))}})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Fresh() {
		t.Fatalf("expected fresh recovery, got %+v", rec)
	}
	types := []Record{
		{Type: RecCreateTable, Schema: &TableSchema{
			Name:    "T",
			Columns: []TableColumn{{Name: "K", Kind: uint8(value.KindInt)}, {Name: "S", Kind: uint8(value.KindString)}},
			Key:     []string{"K"},
		}},
		{Type: RecInsert, Table: "T", Rows: []storage.Tuple{
			intRow(1, 2),
			{value.Null, value.NewString("it's")},
			{value.NewFloat(2.5), mustDate(t, 1979, 7, 3)},
		}},
		{Type: RecDelete, SQL: "DELETE FROM T WHERE K = 1"},
		{Type: RecUpdate, SQL: "UPDATE T SET S = 'x' WHERE K = 2"},
	}
	for i, r := range types {
		c, err := l.Append(r)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if got, want := c.LSN(), uint64(i+1); got != want {
			t.Fatalf("LSN = %d, want %d", got, want)
		}
		if err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	_, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Records) != len(types) {
		t.Fatalf("recovered %d records, want %d", len(rec2.Records), len(types))
	}
	for i, r := range rec2.Records {
		want := types[i]
		if r.LSN != uint64(i+1) || r.Type != want.Type {
			t.Fatalf("record %d = %+v", i, r)
		}
		switch r.Type {
		case RecCreateTable:
			if r.Schema.Name != "T" || len(r.Schema.Columns) != 2 ||
				r.Schema.Columns[1].Name != "S" || len(r.Schema.Key) != 1 {
				t.Fatalf("schema did not round-trip: %+v", r.Schema)
			}
		case RecInsert:
			if r.Table != "T" || len(r.Rows) != 3 || r.Rows[1][1].Str() != "it's" {
				t.Fatalf("insert did not round-trip: %+v", r)
			}
		case RecDelete, RecUpdate:
			if r.SQL != want.SQL {
				t.Fatalf("SQL did not round-trip: %q", r.SQL)
			}
		}
	}
}

func mustDate(t *testing.T, y, m, d int) value.Value {
	t.Helper()
	dt, err := value.NewDate(y, m, d)
	if err != nil {
		t.Fatal(err)
	}
	return value.NewDateValue(dt)
}

func TestGroupCommitConcurrentAppenders(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, per = 8, 25
	var wg sync.WaitGroup
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c, err := l.Append(Record{Type: RecInsert, Table: "T", Rows: []storage.Tuple{intRow(int64(w), int64(i))}})
				if err != nil {
					errc <- err
					return
				}
				if err := c.Wait(); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appends != writers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*per)
	}
	// Group commit: far fewer fsyncs than commits is the whole point.
	if st.Syncs >= st.Appends {
		t.Fatalf("no batching: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	l.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != writers*per {
		t.Fatalf("recovered %d, want %d", len(rec.Records), writers*per)
	}
}

func TestSegmentRotationAndContinuity(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 64)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segment(s)", st.Segments)
	}
	l.Close()
	_, rec, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 64 {
		t.Fatalf("recovered %d records across segments, want 64", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func TestCheckpointPrunesEverything(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 40)
	image := []byte("fake database image v1")
	if err := l.Checkpoint(func(w io.Writer) error { _, err := w.Write(image); return err }); err != nil {
		t.Fatal(err)
	}
	files := l.LiveFiles()
	if len(files) != 2 {
		t.Fatalf("after checkpoint want exactly snapshot+segment, got %v", files)
	}
	var snaps, segsN int
	for _, f := range files {
		switch {
		case isSnapshotName(f):
			snaps++
		case isSegmentName(f):
			segsN++
		default:
			t.Fatalf("unexpected file %s", f)
		}
	}
	if snaps != 1 || segsN != 1 {
		t.Fatalf("want 1 snapshot + 1 segment, got %v", files)
	}
	// Post-checkpoint appends land in the fresh segment and recovery
	// stitches snapshot + tail back together.
	appendN(t, l, 5)
	l.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.SnapshotPayload, image) {
		t.Fatalf("snapshot payload did not round-trip: %q", rec.SnapshotPayload)
	}
	if rec.SnapshotLSN != 41 {
		t.Fatalf("snapshot LSN = %d, want 41", rec.SnapshotLSN)
	}
	if len(rec.Records) != 5 || rec.Records[0].LSN != 41 {
		t.Fatalf("tail = %+v", rec.Records)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	seg := filepath.Join(dir, "wal-00000001.seg")
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Cut the last record mid-frame.
	if err := os.Truncate(seg, st.Size()-7); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 9 {
		t.Fatalf("recovered %d records after torn tail, want 9", len(rec.Records))
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("expected truncated bytes to be counted")
	}
	// The log must keep accepting appends at the right LSN.
	c, err := l2.Append(Record{Type: RecInsert, Table: "T", Rows: []storage.Tuple{intRow(99)}})
	if err != nil {
		t.Fatal(err)
	}
	if c.LSN() != 10 {
		t.Fatalf("resumed at LSN %d, want 10", c.LSN())
	}
	l2.Close()
	_, rec3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Records) != 10 {
		t.Fatalf("recovered %d after resume, want 10", len(rec3.Records))
	}
}

func TestBitFlipTruncatesFromFlip(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 10)
	l.Close()
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) >= 10 {
		t.Fatalf("corrupt record not dropped: recovered %d", len(rec.Records))
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d — ghost after corruption", i, r.LSN)
		}
		if len(r.Rows) != 1 || r.Rows[0][0].Int() != int64(i) {
			t.Fatalf("record %d garbled: %+v", i, r)
		}
	}
}

func TestTornAppendPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 7, TornAppendRate: 1, MaxFaults: 1}))
	_, err = l.Append(Record{Type: RecInsert, Table: "T", Rows: []storage.Tuple{intRow(6)}})
	if !errors.Is(err, ErrBroken) {
		t.Fatalf("torn append error = %v, want ErrBroken", err)
	}
	// Poisoned: further appends refused even though the injector is done.
	if _, err := l.Append(Record{Type: RecInsert, Table: "T"}); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after poison = %v, want ErrBroken", err)
	}
	if !l.Stats().Broken {
		t.Fatal("stats should report broken")
	}
	// A checkpoint heals the log.
	if err := l.Checkpoint(func(w io.Writer) error { _, err := w.Write([]byte("img")); return err }); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Broken {
		t.Fatal("checkpoint did not heal the log")
	}
	appendN(t, l, 2)
	l.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.SnapshotPayload) != "img" || len(rec.Records) != 2 {
		t.Fatalf("recovery after heal = %+v", rec)
	}
}

func TestTornAppendRecoversAckedPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 7)
	l.SetFaultInjector(NewFaultInjector(FaultConfig{Seed: 3, TornAppendRate: 1, MaxFaults: 1}))
	l.Append(Record{Type: RecInsert, Table: "T", Rows: []storage.Tuple{intRow(100)}})
	l.Close()
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The 7 acked records must all survive; the torn 8th must not
	// appear in any garbled form.
	if len(rec.Records) != 7 {
		t.Fatalf("recovered %d, want exactly the 7 acked", len(rec.Records))
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3)
	if err := l.Checkpoint(func(w io.Writer) error { _, err := w.Write([]byte("good")); return err }); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 2)
	l.Close()
	// Plant a newer snapshot with a bad checksum: recovery must ignore
	// and delete it, falling back to the good one.
	bad := snapshotPath(dir, 99)
	if err := os.WriteFile(bad, []byte(snapMagic+"garbagegarbagegarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(rec.SnapshotPayload) != "good" {
		t.Fatalf("snapshot payload = %q, want the older valid one", rec.SnapshotPayload)
	}
	if rec.DroppedSnaps != 1 {
		t.Fatalf("DroppedSnaps = %d, want 1", rec.DroppedSnaps)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not deleted")
	}
	if len(rec.Records) != 2 {
		t.Fatalf("tail records = %d, want 2", len(rec.Records))
	}
}

func TestStaleSegmentsAfterCheckpointCrash(t *testing.T) {
	// Simulate a crash between the snapshot rename and the segment
	// deletion: stale segments (all LSNs below the snapshot) must be
	// scrubbed, not replayed.
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4)
	seg := filepath.Join(dir, "wal-00000001.seg")
	keep, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(func(w io.Writer) error { _, err := w.Write([]byte("img")); return err }); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Resurrect the pre-checkpoint segment, as if deletion never ran.
	if err := os.WriteFile(seg, keep, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 {
		t.Fatalf("stale records replayed: %+v", rec.Records)
	}
	if string(rec.SnapshotPayload) != "img" {
		t.Fatalf("snapshot payload = %q", rec.SnapshotPayload)
	}
	if _, err := os.Stat(seg); !os.IsNotExist(err) {
		t.Fatal("stale segment not scrubbed")
	}
}

func TestTmpFilesScrubbedOnOpen(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snap-12345.tmp"), []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range l.LiveFiles() {
		if strings.HasSuffix(f, ".tmp") {
			t.Fatalf("tmp file survived open: %s", f)
		}
	}
}

func TestStatsString(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1)
	s := l.Stats()
	if s.Segments != 1 || s.NextLSN != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if str := s.String(); !strings.Contains(str, "1 segment(s)") || !strings.Contains(str, "never") {
		t.Fatalf("stats string = %q", str)
	}
	if err := l.Checkpoint(func(w io.Writer) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if str := l.Stats().String(); strings.Contains(str, "never") {
		t.Fatalf("checkpoint age missing: %q", str)
	}
}

func TestSegmentNameParsing(t *testing.T) {
	for name, want := range map[string]bool{
		"wal-00000001.seg":       true,
		"snap-000000000029.snap": false,
		"wal-xx.seg":             false,
		"other.txt":              false,
	} {
		if got := isSegmentName(name); got != want {
			t.Errorf("isSegmentName(%q) = %v", name, got)
		}
	}
	if !isSnapshotName(fmt.Sprintf("snap-%016x.snap", uint64(41))) {
		t.Error("snapshot name not recognized")
	}
}
