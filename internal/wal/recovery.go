package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Recovery reports what Open reconstructed: the newest valid snapshot
// payload (nil when none), the commit records logged after it in LSN
// order, and how much corrupt tail was discarded.
type Recovery struct {
	SnapshotPayload []byte // database image bytes, nil if no snapshot
	SnapshotLSN     uint64 // next-LSN stored in the snapshot header
	Records         []Record
	SegmentsScanned int
	TruncatedBytes  int64 // torn/corrupt tail bytes discarded
	DroppedSegments int   // whole segments discarded past the first corruption
	DroppedSnaps    int   // snapshots whose checksum failed
}

// Fresh reports whether the directory held no usable state at all.
func (r *Recovery) Fresh() bool {
	return r.SnapshotPayload == nil && len(r.Records) == 0
}

// Open opens (creating if needed) the log rooted at dir and performs
// recovery: orphaned temp files are removed, the newest snapshot whose
// checksum verifies is selected (corrupt ones deleted), segments are
// scanned in order, and the log is truncated in place at the first torn
// or corrupt record — everything past it, including later segments, is
// deleted. Appends resume in the surviving tail segment.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	l.syncOk = sync.NewCond(&l.syncMu)
	rec := &Recovery{}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open: %w", err)
	}
	var snaps, segs []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case filepath.Ext(name) == ".tmp":
			os.Remove(filepath.Join(dir, name))
		case isSnapshotName(name):
			snaps = append(snaps, name)
		case isSegmentName(name):
			segs = append(segs, name)
		}
	}
	sort.Strings(snaps) // lexicographic = LSN order (fixed-width hex)
	sort.Strings(segs)  // lexicographic = sequence order (fixed-width decimal)

	// Newest verifiable snapshot wins; broken ones are garbage.
	for i := len(snaps) - 1; i >= 0; i-- {
		path := filepath.Join(dir, snaps[i])
		payload, lsn, ok := readSnapshot(path)
		if !ok {
			os.Remove(path)
			rec.DroppedSnaps++
			continue
		}
		rec.SnapshotPayload, rec.SnapshotLSN = payload, lsn
		// Anything older is superseded.
		for j := 0; j < i; j++ {
			os.Remove(filepath.Join(dir, snaps[j]))
		}
		break
	}
	l.nextLSN = max(rec.SnapshotLSN, 1)

	// Scan segments in order, stopping at the first corruption.
	lastGood := -1 // index into segs of the last segment kept
	corrupt := false
	for i, name := range segs {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: open: %w", err)
		}
		rec.SegmentsScanned++
		recs, validLen, scanErr := ScanSegment(data, l.nextLSN)
		if len(rec.Records) > 0 && len(recs) > 0 && recs[0].LSN != l.nextLSN {
			// A gap at a segment boundary: a whole segment went missing.
			// Nothing after the gap can be trusted to be in order.
			recs, validLen = nil, len(segMagic)
			scanErr = fmt.Errorf("%w: LSN gap at segment boundary", ErrCorrupt)
		}
		rec.Records = append(rec.Records, recs...)
		if len(recs) > 0 {
			l.nextLSN = recs[len(recs)-1].LSN + 1
		}
		if scanErr != nil {
			// Torn or corrupt tail: truncate this segment in place and
			// drop everything after it.
			rec.TruncatedBytes += int64(len(data) - validLen)
			if validLen <= len(segMagic) {
				os.Remove(path)
			} else {
				if err := os.Truncate(path, int64(validLen)); err != nil {
					return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
				lastGood = i
			}
			for _, later := range segs[i+1:] {
				os.Remove(filepath.Join(dir, later))
				rec.DroppedSegments++
			}
			corrupt = true
			break
		}
		lastGood = i
	}

	// Resume appending: reopen the last surviving segment at its end,
	// or start a fresh one.
	if lastGood >= 0 {
		path := filepath.Join(dir, segs[lastGood])
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: reopen segment: %w", err)
		}
		var seq uint64
		fmt.Sscanf(segs[lastGood], "wal-%d.seg", &seq)
		l.f, l.seq, l.segBytes = f, seq, st.Size()
		l.segCount = lastGood + 1
	} else {
		var seq uint64
		if n := len(segs); n > 0 && corrupt {
			// All segments were scrubbed; keep sequence numbers moving
			// forward so a stale cached name never reappears.
			fmt.Sscanf(segs[len(segs)-1], "wal-%d.seg", &seq)
		}
		if err := l.openSegmentLocked(seq + 1); err != nil {
			return nil, nil, err
		}
	}
	l.written = l.nextLSN - 1
	l.flushed = l.written
	return l, rec, nil
}

// ScanSegment parses one segment's bytes (header included). It returns
// the records whose frames verify, with strictly increasing LSNs all
// >= minLSN, the byte offset up to which the segment is valid, and a
// non-nil error describing the first torn or corrupt frame (nil when
// the whole segment parses). It never panics on any input — the
// FuzzWALReplay target drives arbitrary bytes through it.
func ScanSegment(data []byte, minLSN uint64) ([]Record, int, error) {
	if len(data) < len(segMagic) || !bytes.Equal(data[:len(segMagic)], []byte(segMagic)) {
		return nil, 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	var recs []Record
	off := len(segMagic)
	prev := minLSN // records must carry LSN >= minLSN, strictly increasing
	first := true
	for off < len(data) {
		rest := data[off:]
		if len(rest) < 4 {
			return recs, off, fmt.Errorf("%w: torn length prefix", ErrCorrupt)
		}
		n := binary.BigEndian.Uint32(rest[:4])
		if n > maxRecordLen {
			return recs, off, fmt.Errorf("%w: impossible record length %d", ErrCorrupt, n)
		}
		if uint64(len(rest)) < 8+uint64(n) {
			return recs, off, fmt.Errorf("%w: torn record body", ErrCorrupt)
		}
		payload := rest[4 : 4+n]
		crc := binary.BigEndian.Uint32(rest[4+n : 8+n])
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, off, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		r, err := decodePayload(payload)
		if err != nil {
			return recs, off, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if first {
			if r.LSN < prev {
				return recs, off, fmt.Errorf("%w: stale LSN %d (want >= %d)", ErrCorrupt, r.LSN, prev)
			}
		} else if r.LSN != prev+1 {
			return recs, off, fmt.Errorf("%w: LSN %d breaks sequence after %d", ErrCorrupt, r.LSN, prev)
		}
		prev, first = r.LSN, false
		recs = append(recs, r)
		off += 8 + int(n)
	}
	return recs, off, nil
}

// readSnapshot loads and verifies one snapshot file: magic, the stored
// next-LSN, the image payload, and a trailing CRC32C over everything
// before it.
func readSnapshot(path string) (payload []byte, lsn uint64, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	hdr := len(snapMagic) + 8
	if len(data) < hdr+4 || !bytes.Equal(data[:len(snapMagic)], []byte(snapMagic)) {
		return nil, 0, false
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(tail) {
		return nil, 0, false
	}
	lsn = binary.BigEndian.Uint64(data[len(snapMagic):hdr])
	return body[hdr:], lsn, true
}
