package wal

import (
	"bytes"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/storage"
)

// The golden corpus pins the recovery contract on concrete bytes: each
// committed file under testdata/ is the deterministic base segment with
// one specific mutilation (a torn tail, a flipped bit, a corrupt
// header), and the test asserts exactly how many records survive and
// that every survivor is identical to the original — a strict,
// ungarbled prefix, never a ghost commit. Regenerate with
// `go test -run TestGoldenCorpus -update ./internal/wal` after a
// deliberate format change; an accidental change fails the test instead.

var updateGolden = flag.Bool("update", false, "rewrite the golden WAL corpus")

// goldenRecords is the fixed content of the base segment: five records
// covering every type, with rows, NULLs-free ints, and rendered SQL.
func goldenRecords() []Record {
	recs := []Record{
		{Type: RecCreateTable, Schema: &TableSchema{
			Name: "T",
			Columns: []TableColumn{
				{Name: "K", Kind: 1},
				{Name: "V", Kind: 1},
			},
			Key:           []string{"K"},
			TuplesPerPage: 4,
		}},
		{Type: RecInsert, Table: "T", Rows: []storage.Tuple{
			intRow(1, 10), intRow(2, 20), intRow(3, 30),
		}},
		{Type: RecUpdate, SQL: "UPDATE T SET V = 99 WHERE K = 2"},
		{Type: RecInsert, Table: "T", Rows: []storage.Tuple{intRow(4, 40)}},
		{Type: RecDelete, SQL: "DELETE FROM T WHERE V = 30"},
	}
	for i := range recs {
		recs[i].LSN = uint64(i + 1)
	}
	return recs
}

// buildGoldenBase frames the base records into one segment image and
// returns it together with the start offset of every frame.
func buildGoldenBase() (seg []byte, offsets []int) {
	seg = []byte(segMagic)
	for _, r := range goldenRecords() {
		offsets = append(offsets, len(seg))
		payload := appendPayload(nil, r)
		seg = appendU32(seg, uint32(len(payload)))
		seg = append(seg, payload...)
		seg = appendU32(seg, crc32.Checksum(payload, castagnoli))
	}
	return seg, offsets
}

// goldenVariant is one corpus file: a mutation of the base segment and
// the number of records that must survive its recovery scan.
type goldenVariant struct {
	name    string
	survive int  // records recovered before the scan stops
	clean   bool // scan reports no corruption (base only)
	mutate  func(seg []byte, off []int) []byte
}

func goldenVariants() []goldenVariant {
	return []goldenVariant{
		{name: "base.seg", survive: 5, clean: true,
			mutate: func(seg []byte, off []int) []byte { return seg }},
		{name: "trunc-mid-body.seg", survive: 2,
			mutate: func(seg []byte, off []int) []byte { return seg[:off[2]+7] }},
		{name: "trunc-len-prefix.seg", survive: 1,
			mutate: func(seg []byte, off []int) []byte { return seg[:off[1]+2] }},
		{name: "trunc-last-crc.seg", survive: 4,
			mutate: func(seg []byte, off []int) []byte { return seg[:len(seg)-2] }},
		{name: "trailing-zeros.seg", survive: 5,
			mutate: func(seg []byte, off []int) []byte { return append(seg, make([]byte, 12)...) }},
		{name: "bitflip-payload.seg", survive: 1,
			mutate: func(seg []byte, off []int) []byte {
				seg[off[1]+6] ^= 0x10
				return seg
			}},
		{name: "bitflip-crc.seg", survive: 3,
			mutate: func(seg []byte, off []int) []byte {
				seg[off[4]-1] ^= 0x01 // last CRC byte of record 4
				return seg
			}},
		{name: "bitflip-len.seg", survive: 0,
			mutate: func(seg []byte, off []int) []byte {
				seg[off[0]] ^= 0x80 // length prefix now exceeds maxRecordLen
				return seg
			}},
		{name: "bad-magic.seg", survive: 0,
			mutate: func(seg []byte, off []int) []byte {
				seg[0] ^= 0xFF
				return seg
			}},
	}
}

func goldenBytes(v goldenVariant) []byte {
	seg, off := buildGoldenBase()
	return v.mutate(seg, off)
}

func TestGoldenCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	want := goldenRecords()
	for _, v := range goldenVariants() {
		t.Run(v.name, func(t *testing.T) {
			path := filepath.Join(dir, v.name)
			data := goldenBytes(v)
			if *updateGolden {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			committed, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing corpus file (run with -update): %v", err)
			}
			if !bytes.Equal(committed, data) {
				t.Fatalf("committed corpus drifted from the in-code builder; "+
					"the WAL format changed (len %d vs %d)", len(committed), len(data))
			}
			recs, validLen, scanErr := ScanSegment(committed, 1)
			if v.clean && scanErr != nil {
				t.Fatalf("clean segment reported corruption: %v", scanErr)
			}
			if !v.clean && scanErr == nil {
				t.Fatal("mutilated segment scanned clean")
			}
			if len(recs) != v.survive {
				t.Fatalf("recovered %d records, want %d", len(recs), v.survive)
			}
			if validLen > len(committed) {
				t.Fatalf("validLen %d beyond segment end %d", validLen, len(committed))
			}
			// Every survivor must be the original record, bit for bit —
			// a strict prefix with nothing garbled and nothing invented.
			for i, r := range recs {
				if !reflect.DeepEqual(r, want[i]) {
					t.Fatalf("record %d garbled:\n got %+v\nwant %+v", i, r, want[i])
				}
			}
		})
	}
}
