package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rowcodec"
	"repro/internal/storage"
)

// RecType tags what a commit record carries.
type RecType uint8

// The record types. CreateTable and Insert are structural (schema /
// rows encoded directly); Delete and Update are logical (the rendered
// SQL statement), because their row-level effects are computed during
// apply and replaying the statement over the same prior state is
// deterministic.
const (
	RecCreateTable RecType = 1
	RecInsert      RecType = 2
	RecDelete      RecType = 3
	RecUpdate      RecType = 4
	RecDrop        RecType = 5
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecCreateTable:
		return "create-table"
	case RecInsert:
		return "insert"
	case RecDelete:
		return "delete"
	case RecUpdate:
		return "update"
	case RecDrop:
		return "drop-table"
	default:
		return fmt.Sprintf("RecType(%d)", uint8(t))
	}
}

// TableColumn is one column of a logged schema.
type TableColumn struct {
	Name string
	Kind uint8 // value.Kind
}

// TableSchema is the structural payload of a RecCreateTable record —
// everything needed to re-issue the CreateRelation on replay.
type TableSchema struct {
	Name          string
	Columns       []TableColumn
	Key           []string
	TuplesPerPage int
}

// Record is one committed operation. LSN is assigned by the log on
// append; exactly one of the type-specific payloads is set.
type Record struct {
	LSN  uint64
	Type RecType

	Schema *TableSchema    // RecCreateTable
	Table  string          // RecInsert, RecDrop
	Rows   []storage.Tuple // RecInsert
	SQL    string          // RecDelete, RecUpdate
}

// appendPayload appends the record's frame payload to dst: uvarint LSN,
// type byte, then the type-specific body.
func appendPayload(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, r.LSN)
	dst = append(dst, byte(r.Type))
	switch r.Type {
	case RecCreateTable:
		s := r.Schema
		dst = appendString(dst, s.Name)
		dst = binary.AppendUvarint(dst, uint64(len(s.Columns)))
		for _, c := range s.Columns {
			dst = appendString(dst, c.Name)
			dst = append(dst, c.Kind)
		}
		dst = binary.AppendUvarint(dst, uint64(len(s.Key)))
		for _, k := range s.Key {
			dst = appendString(dst, k)
		}
		dst = binary.AppendUvarint(dst, uint64(s.TuplesPerPage))
	case RecInsert:
		dst = appendString(dst, r.Table)
		dst = binary.AppendUvarint(dst, uint64(len(r.Rows)))
		for _, t := range r.Rows {
			dst = rowcodec.AppendTuple(dst, t)
		}
	case RecDelete, RecUpdate:
		dst = append(dst, r.SQL...)
	case RecDrop:
		dst = appendString(dst, r.Table)
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodePayload parses one frame payload back into a Record. It is
// total: any malformed input yields an error, never a panic — the fuzz
// target drives arbitrary bytes through it.
func decodePayload(p []byte) (Record, error) {
	var r Record
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return r, fmt.Errorf("bad LSN")
	}
	p = p[n:]
	if len(p) == 0 {
		return r, fmt.Errorf("missing record type")
	}
	r.LSN, r.Type = lsn, RecType(p[0])
	p = p[1:]
	switch r.Type {
	case RecCreateTable:
		s := &TableSchema{}
		var err error
		if s.Name, p, err = takeString(p); err != nil {
			return r, fmt.Errorf("schema name: %w", err)
		}
		ncols, n := binary.Uvarint(p)
		if n <= 0 || ncols > maxRecordLen {
			return r, fmt.Errorf("bad column count")
		}
		p = p[n:]
		s.Columns = make([]TableColumn, ncols)
		for i := range s.Columns {
			if s.Columns[i].Name, p, err = takeString(p); err != nil {
				return r, fmt.Errorf("column name: %w", err)
			}
			if len(p) == 0 {
				return r, fmt.Errorf("missing column kind")
			}
			s.Columns[i].Kind = p[0]
			p = p[1:]
		}
		nkey, n := binary.Uvarint(p)
		if n <= 0 || nkey > ncols {
			return r, fmt.Errorf("bad key count")
		}
		p = p[n:]
		for i := uint64(0); i < nkey; i++ {
			var k string
			if k, p, err = takeString(p); err != nil {
				return r, fmt.Errorf("key column: %w", err)
			}
			s.Key = append(s.Key, k)
		}
		tpp, n := binary.Uvarint(p)
		if n <= 0 || tpp > maxRecordLen {
			return r, fmt.Errorf("bad tuples-per-page")
		}
		p = p[n:]
		s.TuplesPerPage = int(tpp)
		if len(p) != 0 {
			return r, fmt.Errorf("trailing bytes")
		}
		r.Schema = s
	case RecInsert:
		var err error
		if r.Table, p, err = takeString(p); err != nil {
			return r, fmt.Errorf("table name: %w", err)
		}
		nrows, n := binary.Uvarint(p)
		if n <= 0 || nrows > maxRecordLen {
			return r, fmt.Errorf("bad row count")
		}
		p = p[n:]
		r.Rows = make([]storage.Tuple, 0, min(nrows, 1024))
		for i := uint64(0); i < nrows; i++ {
			var t storage.Tuple
			if t, p, err = rowcodec.DecodeTuplePrefix(p); err != nil {
				return r, fmt.Errorf("row %d: %w", i, err)
			}
			r.Rows = append(r.Rows, t)
		}
		if len(p) != 0 {
			return r, fmt.Errorf("trailing bytes")
		}
	case RecDelete, RecUpdate:
		r.SQL = string(p)
	case RecDrop:
		var err error
		if r.Table, p, err = takeString(p); err != nil {
			return r, fmt.Errorf("table name: %w", err)
		}
		if len(p) != 0 {
			return r, fmt.Errorf("trailing bytes")
		}
	default:
		return r, fmt.Errorf("unknown record type %d", r.Type)
	}
	return r, nil
}

func takeString(p []byte) (string, []byte, error) {
	l, n := binary.Uvarint(p)
	if n <= 0 || uint64(len(p)-n) < l {
		return "", nil, fmt.Errorf("bad string length")
	}
	return string(p[n : n+int(l)]), p[n+int(l):], nil
}
