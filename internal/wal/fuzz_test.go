package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the recovery scanner and pins
// the two invariants every mutilation of a log must preserve:
//
//   - never a panic — the scanner is total on hostile input;
//   - never a ghost commit — every record it does return decodes from a
//     CRC-valid frame, carries a strictly increasing LSN starting at or
//     above minLSN, and re-encodes to the exact payload bytes the frame
//     held, so corruption can truncate history but never rewrite it.
//
// The corpus seeds with the golden mutilations (testdata/golden) plus
// the fuzz engine's own discoveries.
func FuzzWALReplay(f *testing.F) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		f.Fatalf("golden corpus missing: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "golden", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, uint64(1))
	}
	f.Add([]byte(segMagic), uint64(1))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, minLSN uint64) {
		recs, validLen, scanErr := ScanSegment(data, minLSN)
		if validLen < 0 || validLen > len(data) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}
		if scanErr == nil && validLen != len(data) {
			t.Fatalf("clean scan stopped at %d of %d bytes", validLen, len(data))
		}
		prev := minLSN
		for i, r := range recs {
			if i == 0 {
				if r.LSN < minLSN {
					t.Fatalf("record 0 LSN %d below minLSN %d", r.LSN, minLSN)
				}
			} else if r.LSN != prev+1 {
				t.Fatalf("record %d LSN %d not contiguous after %d", i, r.LSN, prev)
			}
			prev = r.LSN
			// Round-trip: a returned record must re-encode to a payload
			// that decodes back to itself — the scanner cannot have
			// invented or garbled fields.
			back, err := decodePayload(appendPayload(nil, r))
			if err != nil {
				t.Fatalf("record %d does not round-trip: %v", i, err)
			}
			if back.LSN != r.LSN || back.Type != r.Type || back.SQL != r.SQL ||
				back.Table != r.Table || len(back.Rows) != len(r.Rows) {
				t.Fatalf("record %d changed across round-trip", i)
			}
		}
	})
}
