package wal

import (
	"math/rand"
	"sync"
)

// FaultConfig tunes the seeded torn-append injector, in the style of
// storage.FaultInjector and spill.FaultInjector: rates are per-append
// probabilities, the seed makes a failing run replayable, and MaxFaults
// bounds how many appends can be cut in one run.
type FaultConfig struct {
	Seed int64
	// TornAppendRate is the probability that an append writes only a
	// random prefix of its frame to the OS and then poisons the log —
	// the crash-mid-write case recovery must truncate.
	TornAppendRate float64
	// MaxFaults caps injected faults; 0 means unlimited.
	MaxFaults int
}

// FaultInjector injects torn WAL appends. Arm it with
// Log.SetFaultInjector.
type FaultInjector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	cfg    FaultConfig
	faults int
}

// NewFaultInjector builds an injector with its own seeded RNG.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Faults reports how many faults fired.
func (fi *FaultInjector) Faults() int {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.faults
}

// tear decides whether to cut an append of frameLen bytes, returning
// the prefix length to actually write.
func (fi *FaultInjector) tear(frameLen int) (int, bool) {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.cfg.TornAppendRate <= 0 ||
		(fi.cfg.MaxFaults > 0 && fi.faults >= fi.cfg.MaxFaults) ||
		fi.rng.Float64() >= fi.cfg.TornAppendRate {
		return 0, false
	}
	fi.faults++
	return fi.rng.Intn(frameLen), true
}
