// Package wal is the durability subsystem: a write-ahead log of
// CRC32C-checksummed, length-prefixed commit records in segment files
// under a data directory, plus atomic checkpoint snapshots
// (write-temp-then-rename) of the whole database image.
//
// The framing reuses the codec shape shared by the wire protocol and
// the spill run files: each record is a uint32 big-endian payload
// length, the payload, and a uint32 big-endian CRC32C of the payload.
// The payload is a uvarint LSN, a type byte, and a type-specific body
// (see record.go). Segment files start with an 8-byte magic.
//
// Commit discipline (the engine's side of the contract): apply the
// operation in memory, append its record, wait for durability, then
// acknowledge. Append failures — a torn write from the fault injector,
// a full disk — poison the log: every later append is refused with
// ErrBroken, so the on-disk log always stays a consistent prefix of the
// applied history. A checkpoint heals a poisoned log, because the
// snapshot captures the exact live state and all segments are retired.
//
// Recovery (Open) loads the newest snapshot whose checksum verifies,
// then replays segment records in LSN order, truncating the log at the
// first torn or corrupt record and deleting everything past it. A
// record is either fully recovered bit-for-bit or not recovered at all
// — never garbled, never reordered.
package wal

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	segMagic  = "NSQLWAL1"
	snapMagic = "NSQLSNP1"
	// maxRecordLen caps one payload; larger length prefixes are treated
	// as corruption rather than attempted as allocations.
	maxRecordLen = 1 << 28
	// DefaultSegmentBytes is the rotation threshold when Options does
	// not set one.
	DefaultSegmentBytes = 1 << 20
)

// ErrBroken is returned by Append after a failed append has poisoned
// the log. The in-memory state may be ahead of the log, so no further
// records may be written until a checkpoint re-establishes the
// snapshot-plus-log invariant.
var ErrBroken = fmt.Errorf("wal: log poisoned by failed append; commits suspended until checkpoint")

// ErrCorrupt tags recovery-time corruption (bad magic, bad checksum,
// torn frame). Open handles it by truncating; it surfaces only through
// Recovery counters and tests.
var ErrCorrupt = fmt.Errorf("wal: corrupt record")

// Options configure a log.
type Options struct {
	// Fsync makes Commit.Wait fsync the active segment (group commit:
	// one fsync covers every record appended since the last). Without
	// it durability is the OS page cache — which survives kill -9,
	// though not power loss.
	Fsync bool
	// SegmentBytes rotates the active segment once it grows past this
	// size. <= 0 uses DefaultSegmentBytes.
	SegmentBytes int64
}

// Stats is a snapshot of log activity, surfaced by \stats, server
// stats, and the EXPLAIN trace alongside the spill counters.
type Stats struct {
	Segments       int   // segment files on disk (including active)
	ActiveBytes    int64 // bytes in the active segment
	Appends        int64 // records appended since Open
	AppendedBytes  int64 // frame bytes appended since Open
	Syncs          int64 // fsync batches (group commits)
	Checkpoints    int64 // snapshots taken since Open
	NextLSN        uint64
	Broken         bool
	LastCheckpoint time.Time // zero if none since Open
}

func (s Stats) String() string {
	age := "never"
	if !s.LastCheckpoint.IsZero() {
		age = time.Since(s.LastCheckpoint).Round(time.Millisecond).String() + " ago"
	}
	return fmt.Sprintf("%d segment(s), %d bytes active, %d appends, %d syncs, %d checkpoint(s) (last %s), next LSN %d",
		s.Segments, s.ActiveBytes, s.Appends, s.Syncs, s.Checkpoints, age, s.NextLSN)
}

// Log is an open write-ahead log rooted at a data directory. Appends
// are serialized internally; Commit.Wait may be called from many
// goroutines and batches their fsyncs (group commit).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards the append path and file state
	f        *os.File   // active segment
	seq      uint64     // active segment sequence number
	segBytes int64      // bytes written to the active segment
	segCount int        // segment files on disk
	nextLSN  uint64
	written  uint64 // last LSN fully handed to the OS
	broken   error  // non-nil once poisoned

	syncMu  sync.Mutex // guards group-commit state
	syncOk  *sync.Cond
	flushed uint64 // last LSN covered by a completed fsync
	syncing bool
	syncErr error

	inj atomic.Pointer[FaultInjector]

	appends     atomic.Int64
	appendBytes atomic.Int64
	syncs       atomic.Int64
	checkpoints atomic.Int64
	lastCkpt    atomic.Int64 // unix nanos, 0 = none
}

// SetFaultInjector arms (or, with nil, disarms) the seeded torn-append
// injector. Test-only, in the style of storage.Store.SetFaultInjector.
func (l *Log) SetFaultInjector(fi *FaultInjector) { l.inj.Store(fi) }

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Commit is a handle to one appended record; Wait blocks until the
// record is durable under the log's sync policy.
type Commit struct {
	log *Log
	lsn uint64
}

// LSN returns the record's log sequence number.
func (c Commit) LSN() uint64 { return c.lsn }

// Wait blocks until the committed record is durable. Without Fsync the
// write already sits in the OS page cache and Wait returns immediately;
// with Fsync it joins the group commit: the first waiter becomes the
// sync leader and one fsync acknowledges every record appended before
// it started.
func (c Commit) Wait() error {
	if c.log == nil || !c.log.opts.Fsync {
		return nil
	}
	return c.log.waitDurable(c.lsn)
}

func (l *Log) waitDurable(lsn uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.flushed >= lsn {
			return nil
		}
		if l.syncing {
			l.syncOk.Wait()
			continue
		}
		// Become the sync leader: snapshot how far the append path has
		// written, fsync once, and credit everyone up to that point.
		l.syncing = true
		l.syncMu.Unlock()
		l.mu.Lock()
		target, f := l.written, l.f
		l.mu.Unlock()
		var err error
		if f != nil {
			err = f.Sync()
		}
		l.syncs.Add(1)
		l.syncMu.Lock()
		l.syncing = false
		if err != nil {
			l.syncErr = fmt.Errorf("wal: fsync: %w", err)
		} else if target > l.flushed {
			l.flushed = target
		}
		l.syncOk.Broadcast()
	}
}

// Err reports whether the log is poisoned (see ErrBroken). Callers
// check it before applying a mutation so that a poisoned log refuses
// DML without touching state; only the single torn append itself can
// leave memory ahead of the log.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.broken
}

// Append assigns the next LSN to rec, frames it, and writes it to the
// active segment. On success the returned Commit's Wait gates the
// caller's acknowledgment. On any write failure the log is poisoned
// (see ErrBroken) and the error is returned.
func (l *Log) Append(rec Record) (Commit, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return Commit{}, l.broken
	}
	if err := l.rotateLocked(); err != nil {
		l.broken = err
		return Commit{}, err
	}
	rec.LSN = l.nextLSN
	payload := appendPayload(nil, rec)
	frame := make([]byte, 0, len(payload)+8)
	frame = appendU32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = appendU32(frame, crc32.Checksum(payload, castagnoli))

	if fi := l.inj.Load(); fi != nil {
		if cut, torn := fi.tear(len(frame)); torn {
			// A torn append: a prefix of the frame reaches the OS and
			// the log is poisoned. Recovery truncates this tail.
			l.f.Write(frame[:cut])
			l.segBytes += int64(cut)
			l.broken = fmt.Errorf("%w (injected torn append at LSN %d)", ErrBroken, rec.LSN)
			return Commit{}, l.broken
		}
	}
	if _, err := l.f.Write(frame); err != nil {
		l.broken = fmt.Errorf("wal: append LSN %d: %v: %w", rec.LSN, err, ErrBroken)
		return Commit{}, l.broken
	}
	l.nextLSN++
	l.written = rec.LSN
	l.segBytes += int64(len(frame))
	l.appends.Add(1)
	l.appendBytes.Add(int64(len(frame)))
	return Commit{log: l, lsn: rec.LSN}, nil
}

// rotateLocked opens a fresh segment when the active one is past the
// rotation threshold. Called with mu held.
func (l *Log) rotateLocked() error {
	limit := l.opts.SegmentBytes
	if limit <= 0 {
		limit = DefaultSegmentBytes
	}
	if l.f != nil && l.segBytes < limit {
		return nil
	}
	if l.f != nil {
		if l.opts.Fsync {
			if err := l.f.Sync(); err != nil {
				return fmt.Errorf("wal: sync before rotate: %w", err)
			}
		}
		l.f.Close()
	}
	return l.openSegmentLocked(l.seq + 1)
}

// openSegmentLocked creates segment seq and makes it active.
func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(segmentPath(l.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	l.f, l.seq, l.segBytes = f, seq, int64(len(segMagic))
	l.segCount++
	if l.opts.Fsync {
		syncDir(l.dir)
	}
	return nil
}

// Checkpoint writes an atomic snapshot of the database image (produced
// by write) and retires the log: the snapshot lands via
// write-temp-then-rename, every segment — all fully covered, since the
// caller holds the engine's exclusive DML lock — is deleted along with
// older snapshots, and a fresh active segment opens. A poisoned log is
// healed: the snapshot is the exact live state.
func (l *Log) Checkpoint(write func(w io.Writer) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()

	tmp, err := os.CreateTemp(l.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename
	crc := crc32.New(castagnoli)
	w := io.MultiWriter(tmp, crc)
	var hdr []byte
	hdr = append(hdr, snapMagic...)
	hdr = appendU64(hdr, l.nextLSN)
	if _, err = w.Write(hdr); err == nil {
		err = write(w)
	}
	if err == nil {
		_, err = tmp.Write(appendU32(nil, crc.Sum32()))
	}
	if err == nil && l.opts.Fsync {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	final := snapshotPath(l.dir, l.nextLSN)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if l.opts.Fsync {
		syncDir(l.dir)
	}

	// The snapshot is durable; retire everything it covers.
	if l.f != nil {
		l.f.Close()
		l.f = nil
	}
	entries, _ := os.ReadDir(l.dir)
	for _, e := range entries {
		name := e.Name()
		if name == filepath.Base(final) {
			continue
		}
		if isSegmentName(name) || isSnapshotName(name) || filepath.Ext(name) == ".tmp" {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
	l.segCount = 0
	l.broken = nil
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	// Records before the snapshot are all durable by construction.
	l.written = l.nextLSN - 1
	l.syncMu.Lock()
	if l.written > l.flushed {
		l.flushed = l.written
	}
	l.syncErr = nil
	l.syncMu.Unlock()
	l.checkpoints.Add(1)
	l.lastCkpt.Store(time.Now().UnixNano())
	return nil
}

// Stats snapshots the counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		Segments:    l.segCount,
		ActiveBytes: l.segBytes,
		NextLSN:     l.nextLSN,
		Broken:      l.broken != nil,
	}
	l.mu.Unlock()
	s.Appends = l.appends.Load()
	s.AppendedBytes = l.appendBytes.Load()
	s.Syncs = l.syncs.Load()
	s.Checkpoints = l.checkpoints.Load()
	if ns := l.lastCkpt.Load(); ns != 0 {
		s.LastCheckpoint = time.Unix(0, ns)
	}
	return s
}

// LiveFiles lists every file under the data directory — the leak probe
// for crash tests, mirroring spill.Manager.LiveFiles. After a
// checkpoint it should name exactly one snapshot and one segment.
func (l *Log) LiveFiles() []string {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// Close releases the active segment handle. It does not checkpoint.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if l.opts.Fsync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

func snapshotPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

func isSegmentName(name string) bool {
	var seq uint64
	_, err := fmt.Sscanf(name, "wal-%d.seg", &seq)
	return err == nil && filepath.Ext(name) == ".seg"
}

func isSnapshotName(name string) bool {
	var lsn uint64
	_, err := fmt.Sscanf(name, "snap-%x.snap", &lsn)
	return err == nil && filepath.Ext(name) == ".snap"
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// syncDir fsyncs a directory so renames and creations in it are
// durable. Errors are ignored: not all filesystems support it.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
