package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestSortCost(t *testing.T) {
	// 2·P·log_{B-1}(P): P=50, B=6 -> 2·50·log5(50) = 243.07...
	if got := SortCost(50, 6); !almost(got, 243.07, 0.1) {
		t.Errorf("SortCost(50,6) = %v", got)
	}
	if got := SortCost(1, 6); got != 0 {
		t.Errorf("SortCost(1,6) = %v, want 0", got)
	}
	if got := SortCost(0, 6); got != 0 {
		t.Errorf("SortCost(0,6) = %v, want 0", got)
	}
	// B below 3 clamps to two-way merge.
	if got, want := SortCost(8, 1), 2*8*3.0; !almost(got, want, 1e-9) {
		t.Errorf("SortCost(8,1) = %v, want %v", got, want)
	}
}

// The paper's section 7.4 example: nested iteration costs exactly 3050;
// the two-merge-join NEST-JA2 evaluation costs "about 475" (478.6 with
// real logarithms).
func TestSection74Example(t *testing.T) {
	p := Section74Params
	if got := p.NestedIteration(); got != 3050 {
		t.Errorf("nested iteration = %v, want 3050", got)
	}
	got := p.Totals().MergeMerge
	if !almost(got, 478.6, 0.5) {
		t.Errorf("two-merge-join total = %v, want ~478.6 (paper: about 475)", got)
	}
	// The transformation wins by roughly 6.4x, preserving the paper's
	// order-of-magnitude claim.
	if ratio := p.NestedIteration() / got; ratio < 6 || ratio > 7 {
		t.Errorf("savings ratio = %v, want ~6.4", ratio)
	}
}

// Recompute the section 7.4 total term by term, as the paper prints it:
// Pi + Pt2 + 2·Pt2·log + Pj + Pt3 + 2·Pt3·log + Pt2 + Pt3 + 2·Pt4 + Pt +
// 2·Pi·log + Pi + Pt.
func TestSection74TermByTerm(t *testing.T) {
	p := Section74Params
	manual := p.Pi + p.Pt2 + SortCost(p.Pt2, p.B) +
		p.Pj + p.Pt3 + SortCost(p.Pt3, p.B) + p.Pt2 + p.Pt3 + 2*p.Pt4 + p.Pt +
		SortCost(p.Pi, p.B) + p.Pi + p.Pt
	if got := p.Totals().MergeMerge; !almost(got, manual, 1e-9) {
		t.Errorf("MergeMerge = %v, manual sum = %v", got, manual)
	}
}

func TestTempCreationNLFitsBoundary(t *testing.T) {
	p := Section74Params
	// Pt3 = 10 > B-1 = 5: the no-fit formula applies.
	noFit := p.Pj + p.Pt3 + p.Pt2 + p.Nt2*p.Pt3 + p.Pt4
	if got := p.TempCreationNLCost(); !almost(got, noFit, 1e-9) {
		t.Errorf("NL no-fit = %v, want %v", got, noFit)
	}
	// Shrink Rt3 to fit: Pj + Pt2 + Pt4.
	p.Pt3 = 4
	if got, want := p.TempCreationNLCost(), p.Pj+p.Pt2+p.Pt4; !almost(got, want, 1e-9) {
		t.Errorf("NL fits = %v, want %v", got, want)
	}
}

func TestFinalNLJoinBoundary(t *testing.T) {
	p := Section74Params // Pt = 5 = B-1: fits
	if got, want := p.FinalNLJoinCost(), p.Pi+p.Pt; !almost(got, want, 1e-9) {
		t.Errorf("final NL fits = %v, want %v", got, want)
	}
	p.Pt = 6 // just over
	if got, want := p.FinalNLJoinCost(), p.Pi+p.Ni*p.Pt; !almost(got, want, 1e-9) {
		t.Errorf("final NL no-fit = %v, want %v", got, want)
	}
}

func TestTypeNNestedIteration(t *testing.T) {
	// X fits in the buffer: read it once.
	if got, want := TypeNNestedIterationCost(100, 120, 50, 100, 64), 120+100+50.0; !almost(got, want, 1e-9) {
		t.Errorf("type-N fits = %v, want %v", got, want)
	}
	// X larger than B: re-scan per qualifying outer tuple.
	if got, want := TypeNNestedIterationCost(100, 120, 100, 100, 64), 120.0+100+100*100; !almost(got, want, 1e-9) {
		t.Errorf("type-N no-fit = %v, want %v", got, want)
	}
}

func TestBestPicksMinimum(t *testing.T) {
	c := TotalCosts{MergeMerge: 4, MergeNL: 2, NLMerge: 8, NLNL: 3}
	if got := c.Best(); got != 2 {
		t.Errorf("Best = %v", got)
	}
}

// Property: the "two merge joins" evaluation is never worse than the other
// three when nothing fits in memory (large temps, small buffer), matching
// the paper's emphasis on that variant.
func TestMergeMergeWinsWhenNothingFits(t *testing.T) {
	f := func(pi8, pj8, scale uint8) bool {
		p := JA2Params{
			Pi:  float64(pi8%100) + 50,
			Pj:  float64(pj8%100) + 50,
			B:   6,
			FNi: 100,
		}
		p.Pt2 = p.Pi/4 + 6 // always > B-1
		p.Pt3 = p.Pj/4 + 6
		p.Pt4 = p.Pt3
		p.Pt = p.Pt2
		p.Ni = p.Pi * 10
		p.Nt2 = p.Pt2 * float64(scale%8+2)
		c := p.Totals()
		return c.MergeMerge <= c.NLNL+1e-9 && c.MergeMerge <= c.NLMerge+1e-9 &&
			c.MergeMerge <= c.MergeNL+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SortCost is monotone in P and decreasing in B.
func TestSortCostMonotone(t *testing.T) {
	f := func(p16 uint16, b8 uint8) bool {
		p := float64(p16%1000) + 2
		b := int(b8%50) + 3
		if SortCost(p+1, b) < SortCost(p, b) {
			return false
		}
		return SortCost(p, b+1) <= SortCost(p, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The savings claim of section 4: across a broad sweep of parameters with
// a correlated inner relation that dominates cost, the transformation
// saves 80%-95% or more.
func TestSavingsClaimHolds(t *testing.T) {
	for _, fNi := range []float64{50, 100, 500} {
		for _, pj := range []float64{30, 100, 300} {
			p := JA2Params{
				Pi: 100, Pj: pj,
				Pt2: 10, Pt3: pj / 3, Pt4: pj / 3, Pt: 10,
				FNi: fNi, Ni: 1000, Nt2: 100, B: 10,
			}
			ni := p.NestedIteration()
			tr := p.Totals().Best()
			if sav := 1 - tr/ni; sav < 0.5 {
				t.Errorf("fNi=%v pj=%v: savings only %.0f%%", fNi, pj, sav*100)
			}
		}
	}
}
