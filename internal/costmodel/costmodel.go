// Package costmodel implements the page-I/O cost formulas of the paper
// (section 7) and the Kim-style baseline formulas they extend. Notation
// follows the paper: Pk is the size in pages of relation Rk, Nk its tuple
// count, f(i) the fraction of outer tuples satisfying the simple
// predicates, and B the buffer size in pages; sorting a P-page relation
// with a (B−1)-way multiway merge sort costs 2·P·log_{B-1}(P) page I/Os.
//
// The paper's own arithmetic uses real-valued logarithms: with the section
// 7.4 parameters (Pi=50, Pj=30, Pt2=7, Pt3=10, Pt4=8, Pt=5, B=6,
// f(i)·Ni=100) the two-merge-join total evaluates to 478.6, which the text
// rounds to "about 475", while the nested iteration cost is exactly 3050.
// This package reproduces both.
package costmodel

import "math"

// SortCost is 2·P·log_{B-1}(P), the cost of a (B−1)-way external merge
// sort of a P-page relation. Inputs of at most one page cost nothing.
// B is clamped to 3 (a merge sort needs at least a two-way merge).
func SortCost(p float64, b int) float64 {
	if p <= 1 {
		return 0
	}
	base := float64(b - 1)
	if base < 2 {
		base = 2
	}
	return 2 * p * math.Log(p) / math.Log(base)
}

// NestedIterationCost is the worst-case cost of evaluating a correlated
// (type-J or type-JA) nested query by nested iteration: the outer relation
// is scanned once and the inner relation once per outer tuple satisfying
// the simple predicates — Pi + f(i)·Ni·Pj.
func NestedIterationCost(pi, fNi, pj float64) float64 {
	return pi + fNi*pj
}

// TypeNNestedIterationCost is the System R cost of a type-N query: the
// inner block is evaluated once, materializing the list X of Px pages
// (reading Pj); each of the f(i)·Ni qualifying outer tuples then scans X,
// which stays in the buffer only if it fits.
func TypeNNestedIterationCost(pi, pj, px, fNi float64, b int) float64 {
	scan := px
	if px > float64(b) {
		scan = fNi * px
	}
	return pj + pi + scan
}

// CanonicalMergeJoinCost is the cost of the canonical (transformed) two-
// relation query evaluated with a merge join: sort both relations and scan
// each once.
func CanonicalMergeJoinCost(pi, pj float64, b int) float64 {
	return SortCost(pi, b) + SortCost(pj, b) + pi + pj
}

// KimJACost is the cost of Kim's NEST-JA transformation evaluated with a
// merge join: build the grouped temp table Rt by sorting Rj (the GROUP BY
// uses the sort), write Rt, then sort Ri and merge-join it with Rt.
func KimJACost(pi, pj, pt float64, b int) float64 {
	return pj + SortCost(pj, b) + pt + SortCost(pi, b) + pi + pt
}

// JA2Params carries the section 7 quantities for one type-JA query
// processed by NEST-JA2. Rt2 is the projected/restricted outer relation,
// Rt3 the projected/restricted inner relation, Rt4 the join result, and Rt
// the grouped temporary relation.
type JA2Params struct {
	Pi, Pj            float64 // outer and inner relation pages
	Pt2, Pt3, Pt4, Pt float64 // temp relation pages
	Ni, Nt2           float64 // tuple counts (Ni for final NL join, Nt2 for temp NL join)
	FNi               float64 // f(i)·Ni, qualifying outer tuples
	B                 int     // buffer pages
}

// ProjectRestrictOuterCost is section 7.1: create Rt2 from Ri with
// duplicates removed by a (B−1)-way merge sort — Pi + Pt2 +
// 2·Pt2·log_{B-1}(Pt2). The sort also leaves Rt2 in join-column order.
func (p JA2Params) ProjectRestrictOuterCost() float64 {
	return p.Pi + p.Pt2 + SortCost(p.Pt2, p.B)
}

// TempCreationNLCost is section 7.2's nested-loops variant: if Rt3 fits in
// B−1 buffer pages the cost is Pj + Pt2 + Pt4; otherwise Rt3 is re-read
// once per Rt2 tuple: Pj + Pt3 + Pt2 + Nt2·Pt3 + Pt4.
func (p JA2Params) TempCreationNLCost() float64 {
	if p.Pt3 <= float64(p.B-1) {
		return p.Pj + p.Pt2 + p.Pt4
	}
	return p.Pj + p.Pt3 + p.Pt2 + p.Nt2*p.Pt3 + p.Pt4
}

// TempCreationMergeCost is section 7.2's merge variant: build Rt3 (Pj +
// Pt3), sort it (2·Pt3·log), merge-join with the already-sorted Rt2 and
// store the result (Pt2 + Pt3 + Pt4). The outer-join variant needed for
// COUNT has an identical cost function.
func (p JA2Params) TempCreationMergeCost() float64 {
	return p.Pj + p.Pt3 + SortCost(p.Pt3, p.B) + p.Pt2 + p.Pt3 + p.Pt4
}

// GroupByCost reads the join result Rt4 (already in GROUP BY order after a
// merge join) and writes the grouped relation Rt.
func (p JA2Params) GroupByCost() float64 {
	return p.Pt4 + p.Pt
}

// FinalMergeJoinCost is section 7.3: Rt is already in join-column order,
// so only Ri needs sorting — 2·Pi·log_{B-1}(Pi) + Pi + Pt.
func (p JA2Params) FinalMergeJoinCost() float64 {
	return SortCost(p.Pi, p.B) + p.Pi + p.Pt
}

// FinalNLJoinCost is the nested-iteration alternative for the final join:
// if Rt fits in B−1 pages it is read once alongside Ri; otherwise it is
// re-read once per Ri tuple.
func (p JA2Params) FinalNLJoinCost() float64 {
	if p.Pt <= float64(p.B-1) {
		return p.Pi + p.Pt
	}
	return p.Pi + p.Ni*p.Pt
}

// TotalCosts are the four possible NEST-JA2 evaluation costs of section
// 7.4, one per combination of join method for the temp-creation join and
// the final join.
type TotalCosts struct {
	MergeMerge float64
	MergeNL    float64
	NLMerge    float64
	NLNL       float64
}

// Totals estimates all four combinations. "One of these evaluation methods
// in particular is worthy of note: the use of two merge joins" — that
// variant benefits from every intermediate being produced in the order the
// next step needs.
func (p JA2Params) Totals() TotalCosts {
	base := p.ProjectRestrictOuterCost() + p.GroupByCost()
	return TotalCosts{
		MergeMerge: base + p.TempCreationMergeCost() + p.FinalMergeJoinCost(),
		MergeNL:    base + p.TempCreationMergeCost() + p.FinalNLJoinCost(),
		NLMerge:    base + p.TempCreationNLCost() + p.FinalMergeJoinCost(),
		NLNL:       base + p.TempCreationNLCost() + p.FinalNLJoinCost(),
	}
}

// Best returns the cheapest of the four totals, as the optimizer would.
func (c TotalCosts) Best() float64 {
	best := c.MergeMerge
	for _, v := range []float64{c.MergeNL, c.NLMerge, c.NLNL} {
		if v < best {
			best = v
		}
	}
	return best
}

// NestedIteration is the baseline Pi + f(i)·Ni·Pj for the same query.
func (p JA2Params) NestedIteration() float64 {
	return NestedIterationCost(p.Pi, p.FNi, p.Pj)
}

// Section74Params are the paper's worked example: "Let Pi = 50, Pj = 30,
// Pt2 = 7, Pt3 = 10, Pt4 = 8, Pt = 5, B = 6, and f(i)·Ni = 100. The nested
// iteration method of processing Q3 costs 3050 page fetches in the worst
// case. The transformation approach, using the modified algorithm and two
// merge joins, costs about 475 page fetches."
var Section74Params = JA2Params{
	Pi: 50, Pj: 30,
	Pt2: 7, Pt3: 10, Pt4: 8, Pt: 5,
	FNi: 100, B: 6,
	Ni: 100, Nt2: 100,
}
