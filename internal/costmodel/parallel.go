// Parallel-execution gating. The paper's cost model counts page I/Os; the
// morsel-driven executor spends no extra I/O (storage access stays
// sequential on the distributor goroutine) but pays a fixed CPU cost per
// worker: goroutine startup, channel synchronization, and hash-table
// setup. That overhead only amortizes when each worker has enough tuples
// to chew on, so the planner keeps small inputs sequential.
package costmodel

// MinParallelTuplesPerWorker is the smallest probe/input cardinality per
// worker for which parallel hash execution beats the sequential operators.
// Below it, channel and goroutine overhead dominates the per-tuple work.
const MinParallelTuplesPerWorker = 512

// ParallelWorthwhile reports whether partitioning tuples across workers
// is expected to pay off. It is false for a single worker (the sequential
// operators are strictly cheaper than a one-worker exchange) and for
// inputs too small to amortize the per-worker setup cost.
func ParallelWorthwhile(tuples float64, workers int) bool {
	if workers <= 1 {
		return false
	}
	return tuples >= float64(workers)*MinParallelTuplesPerWorker
}
