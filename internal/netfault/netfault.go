// Package netfault is an in-process, seeded fault-injecting TCP proxy:
// the network-layer sibling of internal/storage's fault injector. A
// Proxy sits between a client and a server, forwarding bytes in both
// directions while a deterministic per-connection schedule injects the
// failure modes a real network exhibits under stress:
//
//   - delays        — a chunk sleeps before it is forwarded (latency spike)
//   - write splits  — a chunk is forwarded in several small writes
//     (exercises partial reads; not a fault, just reality)
//   - corruption    — one byte of a chunk is flipped in flight
//   - truncation    — a chunk is cut mid-way and both sides hard-closed
//     (a frame torn at an arbitrary byte boundary)
//   - drops         — both sides closed immediately, no warning
//   - partitions    — forwarding silently stops in both directions while
//     the connections stay open (the hang that only
//     deadlines and heartbeats can detect)
//
// All randomness derives from Config.Seed plus the connection's accept
// index, so a (seed, workload) pair replays the same per-connection fault
// schedule; concurrent connection interleaving is the only nondeterminism
// left, exactly as with the storage injector. The chaos storm
// (TestNetChaosStorm in internal/server) drives the whole client/server
// stack through a Proxy and diffs every surviving result against the
// in-process oracle.
package netfault

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config sets the per-chunk fault probabilities of a Proxy. A "chunk" is
// one read off one side of one connection (at most 4 KiB), so a single
// query's stream rolls the dice many times. All probabilities are
// independent; the first fault to fire wins the chunk.
type Config struct {
	Seed int64
	// Delay is the probability that a chunk sleeps DelayDur before moving.
	Delay    float64
	DelayDur time.Duration
	// SplitWrites is the probability that a chunk is forwarded in several
	// small writes with tiny gaps, instead of one write.
	SplitWrites float64
	// Corrupt is the probability that one byte of the chunk is flipped.
	Corrupt float64
	// Truncate is the probability that the chunk is cut mid-way and the
	// connection pair is then hard-closed: a frame torn on the wire.
	Truncate float64
	// Drop is the probability that both sides are closed immediately.
	Drop float64
	// Partition is the probability that the link falls silent: both
	// directions stop forwarding but the connections stay open until the
	// proxy is closed or a peer gives up.
	Partition float64
	// MaxFaults caps the hard faults (corrupt, truncate, drop, partition)
	// injected over the proxy's lifetime; 0 means unlimited. Delays and
	// splits are not capped.
	MaxFaults int64
}

// Proxy is the listener plus its live links. Create with New, point
// clients at Addr, stop with Close (which also severs any partitioned
// links still blocking).
type Proxy struct {
	cfg    atomic.Pointer[Config]
	target string
	lis    net.Listener
	done   chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	nconn  int64
	closed bool

	faults atomic.Int64
	wg     sync.WaitGroup
}

// New starts a proxy on a random loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: target,
		lis:    lis,
		done:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.cfg.Store(&cfg)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Arm replaces the fault schedule for all subsequent chunks, including
// on links already open. A proxy created with a zero-fault Config and
// armed later lets a test load its fixture cleanly and then storm only
// the phase under study. Links opened before Arm keep the per-connection
// RNG streams they started with; only the probabilities change.
func (p *Proxy) Arm(cfg Config) { p.cfg.Store(&cfg) }

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Injected reports how many hard faults have fired.
func (p *Proxy) Injected() int64 { return p.faults.Load() }

// Connections reports how many client connections the proxy has accepted.
func (p *Proxy) Connections() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nconn
}

// Close stops accepting, severs every link (including partitioned ones),
// and waits for the pump goroutines to unwind.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	err := p.lis.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers a connection for Close; it reports false (and closes
// the conn) when the proxy is already shut down.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		c.Close()
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// allow reserves one hard-fault slot, respecting MaxFaults.
func (p *Proxy) allow() bool {
	n := p.faults.Add(1)
	if max := p.cfg.Load().MaxFaults; max > 0 && n > max {
		p.faults.Add(-1)
		return false
	}
	return true
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		idx := p.nconn
		p.nconn++
		p.mu.Unlock()
		if !p.track(client) {
			return
		}
		p.wg.Add(1)
		go p.link(client, idx)
	}
}

// link dials the target and pumps both directions until a fault or
// either peer ends the connection.
func (p *Proxy) link(client net.Conn, idx int64) {
	defer p.wg.Done()
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.untrack(client)
		client.Close()
		return
	}
	if !p.track(server) {
		p.untrack(client)
		client.Close()
		return
	}
	l := &pipe{p: p, a: client, b: server, part: make(chan struct{})}
	p.wg.Add(2)
	// Each direction draws from its own seeded stream, so the schedule
	// for connection idx replays regardless of goroutine interleaving.
	seed := p.cfg.Load().Seed
	go l.pump(client, server, rand.New(rand.NewSource(seed+idx*2+1)))
	go l.pump(server, client, rand.New(rand.NewSource(seed+idx*2+2)))
}

// pipe is one client↔server link: both conns, plus the partition latch
// that stalls the opposite pump too once either direction partitions.
type pipe struct {
	p        *Proxy
	a, b     net.Conn
	once     sync.Once
	partOnce sync.Once
	part     chan struct{}
}

// sever hard-closes both sides of the link.
func (l *pipe) sever() {
	l.once.Do(func() {
		l.p.untrack(l.a)
		l.p.untrack(l.b)
		l.a.Close()
		l.b.Close()
	})
}

// partition silences the link: both pumps stop forwarding after their
// current read, but the conns stay open so peers see a hang, not a reset.
func (l *pipe) partition() {
	l.partOnce.Do(func() { close(l.part) })
}

// partitioned reports whether the link has fallen silent.
func (l *pipe) partitioned() bool {
	select {
	case <-l.part:
		return true
	default:
		return false
	}
}

// stall blocks a partitioned pump until the proxy shuts down.
func (l *pipe) stall() {
	<-l.p.done
	l.sever()
}

// pump forwards src→dst chunk by chunk, rolling the fault schedule once
// per chunk.
func (l *pipe) pump(src, dst net.Conn, rng *rand.Rand) {
	defer l.p.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		cfg := l.p.cfg.Load() // reloaded per chunk so Arm takes effect live
		if n > 0 {
			if l.partitioned() {
				l.stall()
				return
			}
			chunk := buf[:n]
			if cfg.Delay > 0 && rng.Float64() < cfg.Delay {
				time.Sleep(cfg.DelayDur)
			}
			switch {
			case cfg.Drop > 0 && rng.Float64() < cfg.Drop && l.p.allow():
				l.sever()
				return
			case cfg.Partition > 0 && rng.Float64() < cfg.Partition && l.p.allow():
				l.partition()
				l.stall()
				return
			case cfg.Truncate > 0 && rng.Float64() < cfg.Truncate && l.p.allow():
				// Forward a prefix — cutting mid-frame with high
				// probability — then slam the door.
				if cut := rng.Intn(n); cut > 0 {
					dst.Write(chunk[:cut])
				}
				l.sever()
				return
			case cfg.Corrupt > 0 && rng.Float64() < cfg.Corrupt && l.p.allow():
				chunk[rng.Intn(n)] ^= 1 << uint(rng.Intn(8))
			}
			if err2 := l.forward(dst, chunk, rng); err2 != nil {
				l.sever()
				return
			}
		}
		if err != nil {
			l.sever()
			return
		}
	}
}

// forward writes one chunk, possibly split into several smaller writes.
func (l *pipe) forward(dst net.Conn, chunk []byte, rng *rand.Rand) error {
	cfg := l.p.cfg.Load()
	if len(chunk) > 1 && cfg.SplitWrites > 0 && rng.Float64() < cfg.SplitWrites {
		for len(chunk) > 0 {
			piece := 1 + rng.Intn(len(chunk))
			if _, err := dst.Write(chunk[:piece]); err != nil {
				return err
			}
			chunk = chunk[piece:]
			if len(chunk) > 0 {
				time.Sleep(100 * time.Microsecond)
			}
		}
		return nil
	}
	_, err := dst.Write(chunk)
	return err
}

// String summarizes the proxy for logs.
func (p *Proxy) String() string {
	return fmt.Sprintf("netfault proxy %s -> %s (%d conns, %d faults)",
		p.Addr(), p.target, p.Connections(), p.Injected())
}
