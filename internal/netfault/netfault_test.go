package netfault_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/netfault"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis
}

// TestProxyForwardsCleanly: with every probability at zero the proxy is
// a transparent pipe, chunk boundaries included.
func TestProxyForwardsCleanly(t *testing.T) {
	lis := echoServer(t)
	p, err := netfault.New(lis.Addr().String(), netfault.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte("nested queries revisited "), 400) // ~10 KiB, several chunks
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Error("clean proxy corrupted the stream")
	}
	if p.Injected() != 0 {
		t.Errorf("clean proxy reported %d faults", p.Injected())
	}
}

// TestProxyCorruptsExactlyOnce: with Corrupt=1 and MaxFaults=1, the
// stream arrives same-length but not byte-identical, and the fault
// counter reads 1.
func TestProxyCorruptsExactlyOnce(t *testing.T) {
	lis := echoServer(t)
	p, err := netfault.New(lis.Addr().String(), netfault.Config{
		Seed: 7, Corrupt: 1.0, MaxFaults: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte{0x00}, 2048)
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	// The echo path crosses the proxy twice, but MaxFaults=1 allows only
	// one flip in total; a flip is a single bit of a single byte.
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
	if p.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", p.Injected())
	}
}

// TestProxyTruncateClosesLink: a truncation fault cuts the stream and
// hard-closes the connection — the reader sees EOF, not a hang.
func TestProxyTruncateClosesLink(t *testing.T) {
	lis := echoServer(t)
	p, err := netfault.New(lis.Addr().String(), netfault.Config{
		Seed: 3, Truncate: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := bytes.Repeat([]byte{0xEE}, 4096)
	go c.Write(msg)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := io.ReadFull(c, make([]byte, len(msg)))
	if err == nil || n >= len(msg) {
		t.Errorf("truncating proxy delivered %d/%d bytes without error", n, len(msg))
	}
	if p.Injected() == 0 {
		t.Error("no fault recorded")
	}
}

// TestProxyPartitionStallsUntilClose: a partitioned link goes silent —
// reads block — until the proxy is closed, which severs it.
func TestProxyPartitionStallsUntilClose(t *testing.T) {
	lis := echoServer(t)
	p, err := netfault.New(lis.Addr().String(), netfault.Config{
		Seed: 5, Partition: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello?")); err != nil {
		t.Fatal(err)
	}
	// The link is partitioned: nothing comes back within the grace read.
	c.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if n, err := c.Read(make([]byte, 16)); err == nil {
		t.Fatalf("read %d bytes through a partition", n)
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("partition surfaced as %v, want a read timeout", err)
	}
	// Closing the proxy severs the link: the next read errors fast.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 16)); err == nil {
		t.Error("read succeeded after proxy close")
	}
}

// TestProxyDeterministicSchedule: two proxies with the same seed inject
// the same fault schedule for the same traffic.
func TestProxyDeterministicSchedule(t *testing.T) {
	run := func() []byte {
		lis := echoServer(t)
		p, err := netfault.New(lis.Addr().String(), netfault.Config{
			Seed: 99, Corrupt: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		msg := bytes.Repeat([]byte{0x00}, 512)
		if _, err := c.Write(msg); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(msg))
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(c, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	// One small write of zeros produces one chunk per direction, so the
	// seeded schedule fully determines which bytes flip.
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("same seed, same traffic, different corruption schedule")
	}
}
