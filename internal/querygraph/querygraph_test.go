package querygraph_test

import (
	"strings"
	"testing"

	"repro/internal/classify"
	"repro/internal/querygraph"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/workload"
)

func buildGraph(t *testing.T, src string) *querygraph.Node {
	t.Helper()
	db := workload.NewDB(8)
	if err := workload.LoadSuppliers(db); err != nil {
		t.Fatal(err)
	}
	qb := sqlparser.MustParse(src)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	return querygraph.Build(qb)
}

// The Figure 2 shape: a trans-aggregate reference makes type-JA nesting
// visible at the root even though the aggregate and the join predicate
// live at different levels.
func TestFigure2Shape(t *testing.T) {
	root := buildGraph(t, `
		SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`)
	if root.Blocks() != 3 || root.Depth() != 2 {
		t.Errorf("blocks=%d depth=%d", root.Blocks(), root.Depth())
	}
	if !root.HasTypeJA() {
		t.Error("type-JA nesting not detected")
	}
	if root.Edges[0].Type != classify.TypeJA {
		t.Errorf("root edge = %v", root.Edges[0].Type)
	}
	b := root.Edges[0].To
	if len(b.TransAggRefs) != 1 || b.TransAggRefs[0].String() != "S.CITY" {
		t.Errorf("trans-aggregate refs = %v", b.TransAggRefs)
	}
	if b.Edges[0].Type != classify.TypeJ {
		t.Errorf("B->C edge = %v", b.Edges[0].Type)
	}
}

func TestASCIIAndDOT(t *testing.T) {
	root := buildGraph(t, `
		SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`)
	ascii := root.ASCII()
	for _, frag := range []string{
		"A: SELECT S.SNAME FROM S",
		"[type-JA]─ B: SELECT MAX(SP.QTY) FROM SP",
		"[aggregate block; outer refs: S.CITY]",
		"[type-J]─ C: SELECT P.PNO FROM P",
	} {
		if !strings.Contains(ascii, frag) {
			t.Errorf("ASCII missing %q:\n%s", frag, ascii)
		}
	}
	dot := root.DOT()
	for _, frag := range []string{"digraph querytree", "A -> B", "B -> C", `label="type-JA"`} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT missing %q:\n%s", frag, dot)
		}
	}
}

func TestMultipleEdgesAndNames(t *testing.T) {
	root := buildGraph(t, `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP WHERE QTY > 100) AND
		      STATUS = (SELECT MAX(STATUS) FROM S)`)
	if len(root.Edges) != 2 {
		t.Fatalf("edges = %d", len(root.Edges))
	}
	if root.Edges[0].To.Name != "B" || root.Edges[1].To.Name != "C" {
		t.Errorf("names = %s, %s", root.Edges[0].To.Name, root.Edges[1].To.Name)
	}
	if root.Edges[0].Type != classify.TypeN || root.Edges[1].Type != classify.TypeA {
		t.Errorf("types = %v, %v", root.Edges[0].Type, root.Edges[1].Type)
	}
	if root.HasTypeJA() {
		t.Error("no type-JA here")
	}
	ascii := root.ASCII()
	if !strings.Contains(ascii, "├─[type-N]") || !strings.Contains(ascii, "└─[type-A]") {
		t.Errorf("tree connectors wrong:\n%s", ascii)
	}
}

func TestFlatQueryGraph(t *testing.T) {
	root := buildGraph(t, "SELECT SNAME FROM S WHERE STATUS > 10")
	if root.Blocks() != 1 || root.Depth() != 0 || len(root.Edges) != 0 {
		t.Errorf("flat graph = %+v", root)
	}
	if !strings.HasPrefix(root.ASCII(), "A: SELECT S.SNAME FROM S") {
		t.Errorf("ASCII = %q", root.ASCII())
	}
}
