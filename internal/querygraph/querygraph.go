// Package querygraph models a nested query as the multi-way tree of
// query blocks the paper uses (Figure 2): nodes are query blocks, edges
// are nested predicates labeled with their nesting type, and
// trans-aggregate references — correlated references that span a block
// containing an aggregate function, the condition that makes type-JA
// nesting "present" per section 9.1 — are detected and annotated.
//
// Kim's own NEST-G operated by "inspecting and reducing the query graph";
// this reproduction follows the paper's simpler recursive procedure for
// the transformation itself and uses the graph for analysis and
// explanation.
package querygraph

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/classify"
)

// Node is one query block in the tree.
type Node struct {
	// Name labels the node A, B, C, ... in preorder, matching the
	// paper's Figure 2 convention.
	Name  string
	Block *ast.QueryBlock
	Edges []Edge
	// TransAggregate reports that some reference inside this subtree
	// binds above the tree's root... see Build.
	TransAggRefs []ast.ColumnRef
}

// Edge connects a block to one nested block in its WHERE clause.
type Edge struct {
	Type classify.NestType
	To   *Node
}

// Build constructs the query tree for a resolved query. For every node it
// records the trans-aggregate references: free references of the node's
// subtree that cross a block whose SELECT clause aggregates (including the
// node itself), i.e. the references that will surface as type-JA nesting
// once inner levels are merged.
func Build(qb *ast.QueryBlock) *Node {
	counter := 0
	return build(qb, &counter)
}

func build(qb *ast.QueryBlock, counter *int) *Node {
	name := nodeName(*counter)
	*counter++
	n := &Node{Name: name, Block: qb}
	for _, p := range qb.Where {
		for _, sub := range ast.SubqueriesOf(p) {
			child := build(sub, counter)
			n.Edges = append(n.Edges, Edge{Type: classify.Classify(p), To: child})
			if sub.HasAggregate() {
				// References escaping an aggregate subtree are the
				// "trans-aggregate" join predicates of section 9.1.
				child.TransAggRefs = ast.FreeRefs(sub)
			}
		}
	}
	return n
}

// nodeName yields A, B, ..., Z, A1, B1, ...
func nodeName(i int) string {
	letter := string(rune('A' + i%26))
	if i < 26 {
		return letter
	}
	return fmt.Sprintf("%s%d", letter, i/26)
}

// Blocks counts the nodes of the subtree.
func (n *Node) Blocks() int {
	total := 1
	for _, e := range n.Edges {
		total += e.To.Blocks()
	}
	return total
}

// Depth is the height of the subtree (0 for a leaf).
func (n *Node) Depth() int {
	max := 0
	for _, e := range n.Edges {
		if d := e.To.Depth() + 1; d > max {
			max = d
		}
	}
	return max
}

// HasTypeJA reports whether type-JA nesting is present anywhere: an edge
// classified type-JA, which per section 9.1 happens exactly when "a join
// predicate reference spans a query block containing an aggregate
// function".
func (n *Node) HasTypeJA() bool {
	for _, e := range n.Edges {
		if e.Type == classify.TypeJA || e.To.HasTypeJA() {
			return true
		}
	}
	return false
}

// summary renders a one-line description of the node's block.
func (n *Node) summary() string {
	sel := make([]string, len(n.Block.Select))
	for i, s := range n.Block.Select {
		sel[i] = s.String()
	}
	from := make([]string, len(n.Block.From))
	for i, t := range n.Block.From {
		from[i] = t.String()
	}
	return fmt.Sprintf("%s: SELECT %s FROM %s", n.Name, strings.Join(sel, ", "), strings.Join(from, ", "))
}

// ASCII renders the tree in the style of the paper's Figure 2, with edges
// labeled by nesting type and trans-aggregate references called out.
func (n *Node) ASCII() string {
	var b strings.Builder
	n.ascii(&b, "")
	return b.String()
}

func (n *Node) ascii(b *strings.Builder, indent string) {
	b.WriteString(indent)
	b.WriteString(n.summary())
	if len(n.TransAggRefs) > 0 {
		refs := make([]string, len(n.TransAggRefs))
		for i, r := range n.TransAggRefs {
			refs[i] = r.String()
		}
		fmt.Fprintf(b, "   [aggregate block; outer refs: %s]", strings.Join(refs, ", "))
	}
	b.WriteByte('\n')
	for i, e := range n.Edges {
		connector := "├─"
		childIndent := indent + "│  "
		if i == len(n.Edges)-1 {
			connector = "└─"
			childIndent = indent + "   "
		}
		fmt.Fprintf(b, "%s%s[%s]─ ", indent, connector, e.Type)
		// Render the child inline after the edge label.
		sub := strings.TrimPrefix(e.To.renderSub(childIndent), childIndent)
		b.WriteString(sub)
	}
}

func (n *Node) renderSub(indent string) string {
	var b strings.Builder
	n.ascii(&b, indent)
	return b.String()
}

// DOT renders the tree in Graphviz dot syntax for external visualization.
func (n *Node) DOT() string {
	var b strings.Builder
	b.WriteString("digraph querytree {\n  node [shape=box];\n")
	n.dot(&b)
	b.WriteString("}\n")
	return b.String()
}

func (n *Node) dot(b *strings.Builder) {
	label := strings.ReplaceAll(n.summary(), `"`, `\"`)
	fmt.Fprintf(b, "  %s [label=\"%s\"];\n", n.Name, label)
	for _, e := range n.Edges {
		fmt.Fprintf(b, "  %s -> %s [label=\"%s\"];\n", n.Name, e.To.Name, e.Type)
		e.To.dot(b)
	}
}
