package client_test

import (
	"bufio"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// echoServer answers any number of queries per connection with the
// one-row result, so pooled connections can be exercised repeatedly.
func echoServer(t *testing.T) *fakeServer {
	return newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		for {
			if _, ok := readQuery(t, codec, br); !ok {
				return
			}
			batch, done := oneRowResult()
			codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
			codec.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(done))
		}
	})
}

// TestPoolReusesIdleConn: Get after Put hands back the same connection
// instead of dialing again.
func TestPoolReusesIdleConn(t *testing.T) {
	fs := echoServer(t)
	p := client.NewPool(fs.addr(), client.DialOptions{}, 2)
	defer p.Close()
	for i := 0; i < 3; i++ {
		c, err := p.Get()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Collect("SELECT 1", client.Options{}); err != nil {
			t.Fatal(err)
		}
		p.Put(c)
	}
	if n := fs.conns.Load(); n != 1 {
		t.Fatalf("server saw %d connections, want 1 reused across 3 checkouts", n)
	}
}

// TestPoolDropsDeadIdleConn: a connection that died while pooled (the
// server closed it) is discarded by Get, which dials fresh instead of
// handing out a corpse.
func TestPoolDropsDeadIdleConn(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		if _, ok := readQuery(t, codec, br); !ok {
			return
		}
		batch, done := oneRowResult()
		codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
		codec.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(done))
		// Handler returns: the server closes the idle pooled connection.
	})
	p := client.NewPool(fs.addr(), client.DialOptions{}, 2)
	defer p.Close()
	c, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Collect("SELECT 1", client.Options{}); err != nil {
		t.Fatal(err)
	}
	p.Put(c)
	// Wait for the server-side close to reach the pooled conn's pump.
	for c.Healthy() {
		time.Sleep(time.Millisecond)
	}
	c2, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Put(c2)
	if _, err := c2.Collect("SELECT 1", client.Options{}); err != nil {
		t.Fatalf("fresh dial after dead idle conn: %v", err)
	}
	if n := fs.conns.Load(); n != 2 {
		t.Fatalf("server saw %d connections, want 2 (dead idle conn replaced)", n)
	}
}

// TestSnapshotStream: the snapshot exchange delivers the schema first,
// then rows, then Done — and a typed refusal leaves the conn usable.
func TestSnapshotStream(t *testing.T) {
	const createSQL = "CREATE TABLE T__S1 (K INTEGER)"
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		for {
			typ, payload, err := codec.ReadFrame(br)
			if err != nil {
				return
			}
			if typ != wire.FrameSnapshot {
				t.Errorf("fake server: got frame 0x%02x, want Snapshot", typ)
				return
			}
			s, err := wire.DecodeSnapshot(payload)
			if err != nil {
				t.Error(err)
				return
			}
			if s.Table == "MISSING" {
				codec.WriteFrame(nc, wire.FrameError, wire.EncodeError(wire.ErrorFrame{
					Code: wire.CodeInternal, Message: "engine: unknown relation MISSING",
				}))
				continue
			}
			codec.WriteFrame(nc, wire.FrameSnapshotMeta, wire.EncodeSnapshotMeta(wire.SnapshotMeta{CreateSQL: createSQL}))
			for i := 0; i < 2; i++ {
				codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(wire.RowBatch{
					Columns: []string{"K"},
					Rows:    []storage.Tuple{{value.NewInt(int64(i))}},
				}))
			}
			codec.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(wire.Done{Rows: 2}))
		}
	})
	c, err := client.Dial(fs.addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var rows int
	meta, done, err := c.Snapshot("T__S1", func(b wire.RowBatch) error {
		rows += len(b.Rows)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.CreateSQL != createSQL || rows != 2 || done.Rows != 2 {
		t.Fatalf("snapshot: meta=%q rows=%d done=%+v", meta.CreateSQL, rows, done)
	}

	// A refused table surfaces typed and the connection survives for the
	// next exchange.
	var re *wire.RemoteError
	if _, _, err := c.Snapshot("MISSING", func(wire.RowBatch) error { return nil }); !errors.As(err, &re) {
		t.Fatalf("missing table: err = %v, want RemoteError", err)
	}
	if !c.Healthy() {
		t.Fatal("typed snapshot refusal poisoned the connection")
	}
	if _, _, err := c.Snapshot("T__S1", func(wire.RowBatch) error { return nil }); err != nil {
		t.Fatalf("snapshot after refusal: %v", err)
	}
}
