// Package client is the Go client for the nestedsql wire protocol: it
// dials a nestedsqld server, runs queries, and streams result rows as
// the server produces them. Server-side failures surface as
// *wire.RemoteError, which unwraps into the same qctx taxonomy a local
// engine returns — errors.Is(err, nestedsql.ErrOverloaded) and
// errors.As(err, &*qctx.OverloadError) work unchanged, retry-after
// hint included.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// Conn is one client connection. It is not safe for concurrent use; a
// connection runs one query stream at a time, and the previous Stream
// must be exhausted or closed before the next Query.
type Conn struct {
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	active *Stream
	err    error // sticky transport/protocol failure; poisons the conn
}

// Dial connects and performs the version handshake.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{c: nc, br: bufio.NewReader(nc), bw: bufio.NewWriter(nc)}
	if timeout > 0 {
		nc.SetDeadline(time.Now().Add(timeout))
	}
	if err := c.handshake(); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

func (c *Conn) handshake() error {
	if err := wire.WriteFrame(c.bw, wire.FrameHello, wire.EncodeHello(wire.Hello{Version: wire.Version})); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return fmt.Errorf("client: handshake: %w", err)
	}
	switch typ {
	case wire.FrameHello:
		h, err := wire.DecodeHello(payload)
		if err != nil {
			return err
		}
		if h.Version != wire.Version {
			return fmt.Errorf("client: server speaks version %d, want %d", h.Version, wire.Version)
		}
		return nil
	case wire.FrameError:
		f, err := wire.DecodeError(payload)
		if err != nil {
			return err
		}
		return &wire.RemoteError{Frame: f}
	default:
		return fmt.Errorf("client: unexpected handshake frame 0x%02x", typ)
	}
}

// Close closes the connection. Any active stream becomes unusable.
func (c *Conn) Close() error { return c.c.Close() }

// Options are the per-query knobs carried in the Query frame. Zero
// values defer to the server's configuration.
type Options struct {
	Timeout     time.Duration
	MaxRows     int64
	Strategy    byte // a wire.Strategy* constant
	Parallelism int
}

// Query sends one SQL statement and returns the result stream. The
// stream must be drained (Next until false) or Closed before the next
// Query on this connection.
func (c *Conn) Query(sql string, opts Options) (*Stream, error) {
	if c.err != nil {
		return nil, c.err
	}
	if c.active != nil {
		return nil, errors.New("client: previous stream not closed")
	}
	q := wire.Query{
		TimeoutMicros: opts.Timeout.Microseconds(),
		MaxRows:       opts.MaxRows,
		Strategy:      opts.Strategy,
		Parallelism:   int64(opts.Parallelism),
		SQL:           sql,
	}
	if err := wire.WriteFrame(c.bw, wire.FrameQuery, wire.EncodeQuery(q)); err != nil {
		return nil, c.poison(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, c.poison(err)
	}
	st := &Stream{conn: c}
	c.active = st
	return st, nil
}

func (c *Conn) poison(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// Stream iterates a query's result. Usage:
//
//	st, err := conn.Query(sql, opts)
//	for st.Next() {
//		use(st.Row())
//	}
//	err = st.Err()
//
// Row slices are reused between Next calls; copy what you keep.
type Stream struct {
	conn     *Conn
	cols     []string
	batch    []storage.Tuple
	idx      int
	row      storage.Tuple
	done     bool
	doneInfo wire.Done
	err      error
}

// Next advances to the next row, fetching frames as needed. It returns
// false at end of stream or on error; check Err afterwards.
func (s *Stream) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	for s.idx >= len(s.batch) {
		if !s.fetch() {
			return false
		}
	}
	s.row = s.batch[s.idx]
	s.idx++
	return true
}

// fetch reads the next frame, refilling the batch. Returns false when
// the stream ended (Done, Error, or transport failure).
func (s *Stream) fetch() bool {
	typ, payload, err := wire.ReadFrame(s.conn.br)
	if err != nil {
		s.fail(s.conn.poison(fmt.Errorf("client: read: %w", err)))
		return false
	}
	switch typ {
	case wire.FrameRowBatch:
		b, err := wire.DecodeRowBatch(payload)
		if err != nil {
			s.fail(s.conn.poison(err))
			return false
		}
		if s.cols == nil {
			s.cols = b.Columns
		}
		s.batch, s.idx = b.Rows, 0
		return true
	case wire.FrameDone:
		d, err := wire.DecodeDone(payload)
		if err != nil {
			s.fail(s.conn.poison(err))
			return false
		}
		s.doneInfo = d
		s.finish()
		return false
	case wire.FrameError:
		f, err := wire.DecodeError(payload)
		if err != nil {
			s.fail(s.conn.poison(err))
			return false
		}
		s.fail(&wire.RemoteError{Frame: f})
		s.finish()
		return false
	default:
		s.fail(s.conn.poison(fmt.Errorf("client: unexpected frame 0x%02x", typ)))
		return false
	}
}

func (s *Stream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// finish detaches the stream from the connection: the response is
// complete and the conn may run its next query.
func (s *Stream) finish() {
	s.done = true
	if s.conn.active == s {
		s.conn.active = nil
	}
}

// Row returns the current row after a true Next.
func (s *Stream) Row() storage.Tuple { return s.row }

// Columns returns the column names, available after the first Next (or
// after Next returned false for an empty result).
func (s *Stream) Columns() []string { return s.cols }

// Err returns the stream's terminal error: nil on a clean Done, a
// *wire.RemoteError for a server-side failure, or a transport error.
func (s *Stream) Err() error { return s.err }

// Stats returns the Done frame's summary; valid once Next has returned
// false with a nil Err.
func (s *Stream) Stats() wire.Done { return s.doneInfo }

// Close drains any unread frames so the connection is ready for the
// next query. It returns the stream's error, if any.
func (s *Stream) Close() error {
	for !s.done && s.err == nil {
		s.fetch()
	}
	return s.err
}

// Result is a fully materialized query result, for callers that do not
// need streaming.
type Result struct {
	Columns []string
	Rows    []storage.Tuple
	Done    wire.Done
}

// Collect runs a query and materializes the whole result.
func (c *Conn) Collect(sql string, opts Options) (*Result, error) {
	st, err := c.Query(sql, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for st.Next() {
		res.Rows = append(res.Rows, append(storage.Tuple(nil), st.Row()...))
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	res.Columns = st.Columns()
	res.Done = st.Stats()
	return res, nil
}
