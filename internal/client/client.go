// Package client is the Go client for the nestedsql wire protocol: it
// dials a nestedsqld server, runs queries, and streams result rows as
// the server produces them. Server-side failures surface as
// *wire.RemoteError, which unwraps into the same qctx taxonomy a local
// engine returns — errors.Is(err, nestedsql.ErrOverloaded) and
// errors.As(err, &*qctx.OverloadError) work unchanged, retry-after
// hint included.
//
// # Fault tolerance
//
// A connection negotiates checksummed frames and heartbeats during the
// Hello exchange (DialOptions opts out), answers server Pings from a
// background read pump, and — when DialOptions.Reconnect is set —
// survives connection loss transparently: the query is resubmitted on a
// fresh connection after a capped, jittered backoff, but only if zero
// RowBatch frames had been received. Once any rows have arrived a
// resubmission could silently duplicate them, so the stream fails with
// an error matching ErrConnectionLost instead and the caller decides.
// An overload retry-after hint from the server is honored as a floor on
// the reconnect backoff, so a shed-then-disconnected client does not
// hammer a struggling server.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/wire"
)

// ErrConnectionLost reports a connection that died mid-query after rows
// had already been delivered (or with reconnection disabled). Match
// with errors.Is; the concrete *ConnectionLostError carries the cause.
var ErrConnectionLost = errors.New("client: connection lost")

// ConnectionLostError wraps the transport failure that killed a
// connection. It matches both ErrConnectionLost and its cause, so
// errors.Is(err, wire.ErrCorruptFrame) still works when corruption was
// what tore the link down.
type ConnectionLostError struct {
	Cause error
}

func (e *ConnectionLostError) Error() string {
	return fmt.Sprintf("client: connection lost: %v", e.Cause)
}

// Unwrap exposes both the sentinel and the cause (multi-error unwrap).
func (e *ConnectionLostError) Unwrap() []error {
	return []error{ErrConnectionLost, e.Cause}
}

// ReconnectConfig tunes automatic redialing. The zero value of each
// field selects a default; a nil *ReconnectConfig in DialOptions
// disables reconnection entirely.
type ReconnectConfig struct {
	// MaxAttempts bounds redials per failure (0 = 5).
	MaxAttempts int
	// BaseDelay is the first backoff step (0 = 20ms). Each attempt
	// doubles it, capped at MaxDelay, with ±half jitter.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 = 1s).
	MaxDelay time.Duration
	// Seed fixes the jitter schedule for deterministic tests (0 = from
	// the clock).
	Seed int64
}

func (rc *ReconnectConfig) maxAttempts() int {
	if rc.MaxAttempts <= 0 {
		return 5
	}
	return rc.MaxAttempts
}

func (rc *ReconnectConfig) baseDelay() time.Duration {
	if rc.BaseDelay <= 0 {
		return 20 * time.Millisecond
	}
	return rc.BaseDelay
}

func (rc *ReconnectConfig) maxDelay() time.Duration {
	if rc.MaxDelay <= 0 {
		return time.Second
	}
	return rc.MaxDelay
}

// DialOptions tunes a connection beyond the plain Dial signature.
type DialOptions struct {
	// Timeout bounds the dial plus handshake (0 = 10s).
	Timeout time.Duration
	// IOTimeout bounds each wait for a response frame once a query is in
	// flight (0 = no bound). It does not apply to an idle connection,
	// which may sit quietly between queries answering heartbeats.
	IOTimeout time.Duration
	// DisableChecksum keeps FeatureChecksum out of the Hello.
	DisableChecksum bool
	// DisableHeartbeat keeps FeatureHeartbeat out of the Hello.
	DisableHeartbeat bool
	// Reconnect enables transparent redialing; nil disables it.
	Reconnect *ReconnectConfig
}

func (o DialOptions) timeout() time.Duration {
	if o.Timeout <= 0 {
		return 10 * time.Second
	}
	return o.Timeout
}

// transport is one live TCP connection plus its read pump. The pump
// owns all reads: it answers server Pings inline (under the write
// mutex, shared with query submission) and hands every other frame to
// the stream via recv. When a read fails, the error is recorded and
// done closes — readErr is safely visible to anyone who saw done close.
type transport struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex // serializes bw writes: query frames vs pump Pongs
	bw  *bufio.Writer

	codec     wire.Codec
	heartbeat bool
	cluster   bool

	recv    chan recvMsg
	done    chan struct{} // closed by the pump when reading ends
	quit    chan struct{} // closed by Close to release a blocked pump
	quitOne sync.Once
	readErr error // set before done closes
}

type recvMsg struct {
	typ     byte
	payload []byte
}

func (t *transport) close() {
	t.quitOne.Do(func() { close(t.quit) })
	t.nc.Close()
}

// write sends one frame and flushes it, under the write mutex and a
// deadline so a pong to a half-dead server cannot wedge the pump.
func (t *transport) write(typ byte, payload []byte, timeout time.Duration) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()
	if timeout > 0 {
		t.nc.SetWriteDeadline(time.Now().Add(timeout))
	} else {
		t.nc.SetWriteDeadline(time.Time{})
	}
	if err := t.codec.WriteFrame(t.bw, typ, payload); err != nil {
		return err
	}
	return t.bw.Flush()
}

func (t *transport) readPump() {
	for {
		typ, payload, err := t.codec.ReadFrame(t.br)
		if err != nil {
			t.readErr = err
			close(t.done)
			return
		}
		if typ == wire.FramePing {
			// Liveness probe from the server; answer without involving
			// the caller, who may be idle between queries.
			if err := t.write(wire.FramePong, payload, 10*time.Second); err != nil {
				t.readErr = err
				close(t.done)
				return
			}
			continue
		}
		select {
		case t.recv <- recvMsg{typ, payload}:
		case <-t.quit:
			return
		}
	}
}

// Conn is one client connection. It is not safe for concurrent use; a
// connection runs one query stream at a time, and the previous Stream
// must be exhausted or closed before the next Query.
type Conn struct {
	addr string
	opts DialOptions
	tr   *transport

	active *Stream
	err    error // sticky failure; a reconnectable loss can clear it

	retryFloor time.Time // earliest next submission after an overload shed
	rng        *rand.Rand
}

// Dial connects and performs the version handshake with default
// options (checksums and heartbeats on, no reconnection).
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	return DialOpts(addr, DialOptions{Timeout: timeout})
}

// DialOpts connects with explicit options.
func DialOpts(addr string, opts DialOptions) (*Conn, error) {
	tr, err := dialTransport(addr, opts)
	if err != nil {
		return nil, err
	}
	seed := int64(0)
	if opts.Reconnect != nil {
		seed = opts.Reconnect.Seed
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Conn{addr: addr, opts: opts, tr: tr, rng: rand.New(rand.NewSource(seed))}, nil
}

// dialTransport dials and handshakes. It first offers the extended
// Hello with feature flags; a server old enough to reject it as a
// protocol error gets one more dial with the legacy five-byte form —
// feature-free, but interoperable.
func dialTransport(addr string, opts DialOptions) (*transport, error) {
	tr, err := dialOnce(addr, opts, false)
	if err == nil {
		return tr, nil
	}
	var re *wire.RemoteError
	if errors.As(err, &re) && re.Frame.Code == wire.CodeProtocol {
		return dialOnce(addr, opts, true)
	}
	return nil, err
}

func dialOnce(addr string, opts DialOptions, legacy bool) (*transport, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.timeout())
	if err != nil {
		return nil, err
	}
	nc.SetDeadline(time.Now().Add(opts.timeout()))
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)

	h := wire.Hello{Version: wire.Version, Legacy: legacy}
	if !legacy {
		if !opts.DisableChecksum {
			h.Flags |= wire.FeatureChecksum
		}
		if !opts.DisableHeartbeat {
			h.Flags |= wire.FeatureHeartbeat
		}
		// Always offered; only worker servers (those fronting a local
		// engine) grant it back.
		h.Flags |= wire.FeatureCluster
	}
	// The Hello exchange is always plain framing; the negotiated codec
	// takes over afterwards.
	if err := wire.WriteFrame(bw, wire.FrameHello, wire.EncodeHello(h)); err != nil {
		nc.Close()
		return nil, err
	}
	if err := bw.Flush(); err != nil {
		nc.Close()
		return nil, err
	}
	typ, payload, err := wire.ReadFrame(br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	var granted byte
	switch typ {
	case wire.FrameHello:
		reply, err := wire.DecodeHello(payload)
		if err != nil {
			nc.Close()
			return nil, err
		}
		if reply.Version != wire.Version {
			nc.Close()
			return nil, fmt.Errorf("client: server speaks version %d, want %d", reply.Version, wire.Version)
		}
		granted = reply.Flags
	case wire.FrameError:
		f, err := wire.DecodeError(payload)
		nc.Close()
		if err != nil {
			return nil, err
		}
		return nil, &wire.RemoteError{Frame: f}
	default:
		nc.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame 0x%02x", typ)
	}
	nc.SetDeadline(time.Time{})

	tr := &transport{
		nc:        nc,
		br:        br,
		bw:        bw,
		codec:     wire.Codec{Checksums: granted&wire.FeatureChecksum != 0},
		heartbeat: granted&wire.FeatureHeartbeat != 0,
		cluster:   granted&wire.FeatureCluster != 0,
		recv:      make(chan recvMsg),
		done:      make(chan struct{}),
		quit:      make(chan struct{}),
	}
	go tr.readPump()
	return tr, nil
}

// Close closes the connection. Any active stream becomes unusable.
func (c *Conn) Close() error {
	c.tr.close()
	if c.err == nil {
		c.err = errors.New("client: connection closed")
	}
	return nil
}

// Checksums reports whether the server granted checksummed framing.
func (c *Conn) Checksums() bool { return c.tr.codec.Checksums }

// Heartbeats reports whether the server granted heartbeat liveness.
func (c *Conn) Heartbeats() bool { return c.tr.heartbeat }

// Cluster reports whether the server granted the shard scatter/gather
// feature — true only for servers fronting a local engine (workers).
func (c *Conn) Cluster() bool { return c.tr.cluster }

// Options are the per-query knobs carried in the Query frame. Zero
// values defer to the server's configuration.
type Options struct {
	Timeout     time.Duration
	MaxRows     int64
	Strategy    byte // a wire.Strategy* constant
	Parallelism int
	// Cancel aborts the stream client-side when closed: Next returns
	// false with Err matching qctx.ErrCanceled. It also aborts a
	// reconnect backoff in progress.
	Cancel <-chan struct{}
}

// canReconnect reports whether transparent redialing is configured.
func (c *Conn) canReconnect() bool { return c.opts.Reconnect != nil }

// redial replaces the dead transport after a backoff, honoring the
// overload retry-after floor and the stream's Cancel channel.
func (c *Conn) redial(cancel <-chan struct{}) error {
	rc := c.opts.Reconnect
	var lastErr error = ErrConnectionLost
	for attempt := 0; attempt < rc.maxAttempts(); attempt++ {
		d := rc.baseDelay() << uint(attempt)
		if max := rc.maxDelay(); d > max {
			d = max
		}
		// ±half jitter keeps a fleet of reconnecting clients from
		// stampeding in lockstep.
		d = d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
		if floor := time.Until(c.retryFloor); floor > d {
			d = floor
		}
		select {
		case <-time.After(d):
		case <-cancel:
			return qctx.ErrCanceled
		}
		tr, err := dialTransport(c.addr, c.opts)
		if err == nil {
			c.tr = tr
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("client: reconnect gave up after %d attempts: %w", rc.maxAttempts(), lastErr)
}

// Query sends one SQL statement and returns the result stream. The
// stream must be drained (Next until false) or Closed before the next
// Query on this connection.
func (c *Conn) Query(sql string, opts Options) (*Stream, error) {
	if c.err != nil {
		// A reconnectable connection loss is not fatal to the Conn: the
		// next query may transparently redial.
		if !c.canReconnect() || !errors.Is(c.err, ErrConnectionLost) {
			return nil, c.err
		}
		if err := c.redial(opts.Cancel); err != nil {
			return nil, c.poison(err)
		}
		c.err = nil
	}
	if c.active != nil {
		return nil, errors.New("client: previous stream not closed")
	}
	q := wire.Query{
		TimeoutMicros: opts.Timeout.Microseconds(),
		MaxRows:       opts.MaxRows,
		Strategy:      opts.Strategy,
		Parallelism:   int64(opts.Parallelism),
		SQL:           sql,
	}
	if err := c.sendQuery(q); err != nil {
		// The write failed before anything was received; resubmitting on
		// a fresh connection is always safe here.
		if !c.canReconnect() {
			return nil, c.poison(err)
		}
		if rerr := c.redial(opts.Cancel); rerr != nil {
			return nil, c.poison(rerr)
		}
		if rerr := c.sendQuery(q); rerr != nil {
			return nil, c.poison(rerr)
		}
	}
	st := &Stream{conn: c, q: q, cancel: opts.Cancel}
	c.active = st
	return st, nil
}

func (c *Conn) sendQuery(q wire.Query) error {
	return c.tr.write(wire.FrameQuery, wire.EncodeQuery(q), 0)
}

func (c *Conn) poison(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// noteOverload records a server retry-after hint as a submission floor
// for future reconnects.
func (c *Conn) noteOverload(err error) {
	var ov *qctx.OverloadError
	if errors.As(err, &ov) && ov.RetryAfter > 0 {
		if floor := time.Now().Add(ov.RetryAfter); floor.After(c.retryFloor) {
			c.retryFloor = floor
		}
	}
}

// Stream iterates a query's result. Usage:
//
//	st, err := conn.Query(sql, opts)
//	for st.Next() {
//		use(st.Row())
//	}
//	err = st.Err()
//
// Row slices are reused between Next calls; copy what you keep.
type Stream struct {
	conn     *Conn
	q        wire.Query
	cancel   <-chan struct{}
	cols     []string
	batch    []storage.Tuple
	idx      int
	row      storage.Tuple
	gotBatch bool // a RowBatch arrived: the resubmission fence
	done     bool
	doneInfo wire.Done
	err      error
}

// Next advances to the next row, fetching frames as needed. It returns
// false at end of stream or on error; check Err afterwards.
func (s *Stream) Next() bool {
	if s.done || s.err != nil {
		return false
	}
	for s.idx >= len(s.batch) {
		if !s.fetch() {
			return false
		}
	}
	s.row = s.batch[s.idx]
	s.idx++
	return true
}

// fetch waits for the next frame from the read pump, refilling the
// batch. Returns false when the stream ended (Done, Error, cancel, or
// transport failure that could not be healed by a reconnect).
func (s *Stream) fetch() bool {
	for {
		tr := s.conn.tr
		var timeout <-chan time.Time
		if io := s.conn.opts.IOTimeout; io > 0 {
			tm := time.NewTimer(io)
			defer tm.Stop()
			timeout = tm.C
		}
		select {
		case m := <-tr.recv:
			return s.handleFrame(m)
		case <-tr.done:
			if s.handleLost(tr.readErr) {
				continue // reconnected and resubmitted; keep fetching
			}
			return false
		case <-s.cancel:
			// The server-side query is abandoned; this connection has an
			// answer in flight we will never read, so it cannot be reused.
			s.conn.tr.close()
			s.conn.poison(qctx.ErrCanceled)
			s.fail(qctx.ErrCanceled)
			// Detach: the response is undeliverable and the conn poisoned;
			// a long-lived caller that heals the conn by redialing must
			// not find a dead stream still registered as active.
			s.finish()
			return false
		case <-timeout:
			s.conn.tr.close()
			err := fmt.Errorf("client: no frame within %v: %w", s.conn.opts.IOTimeout, ErrConnectionLost)
			s.conn.poison(err)
			s.fail(err)
			s.finish()
			return false
		}
	}
}

func (s *Stream) handleFrame(m recvMsg) bool {
	switch m.typ {
	case wire.FrameRowBatch:
		b, err := wire.DecodeRowBatch(m.payload)
		if err != nil {
			s.fail(s.conn.poison(err))
			return false
		}
		s.gotBatch = true
		if s.cols == nil {
			s.cols = b.Columns
		}
		s.batch, s.idx = b.Rows, 0
		return true
	case wire.FrameDone:
		d, err := wire.DecodeDone(m.payload)
		if err != nil {
			s.fail(s.conn.poison(err))
			return false
		}
		s.doneInfo = d
		s.finish()
		return false
	case wire.FrameError:
		f, err := wire.DecodeError(m.payload)
		if err != nil {
			s.fail(s.conn.poison(err))
			return false
		}
		rerr := &wire.RemoteError{Frame: f}
		s.conn.noteOverload(rerr)
		s.fail(rerr)
		s.finish()
		return false
	default:
		s.fail(s.conn.poison(fmt.Errorf("client: unexpected frame 0x%02x", m.typ)))
		return false
	}
}

// handleLost reacts to the transport dying mid-stream. If no rows were
// received and reconnection is configured, it redials and resubmits the
// query, reporting true so fetch continues on the new transport. Any
// rows already delivered fence off resubmission — a second execution
// would duplicate them — so the stream fails typed instead.
func (s *Stream) handleLost(cause error) bool {
	lost := &ConnectionLostError{Cause: cause}
	if s.gotBatch || !s.conn.canReconnect() {
		s.conn.poison(lost)
		s.fail(lost)
		s.finish()
		return false
	}
	if err := s.conn.redial(s.cancel); err != nil {
		s.conn.poison(err)
		s.fail(err)
		s.finish()
		return false
	}
	if err := s.conn.sendQuery(s.q); err != nil {
		s.conn.poison(&ConnectionLostError{Cause: err})
		s.fail(s.conn.err)
		s.finish()
		return false
	}
	s.cols, s.batch, s.idx = nil, nil, 0
	return true
}

func (s *Stream) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// finish detaches the stream from the connection: the response is
// complete (or undeliverable) and the conn may run its next query.
func (s *Stream) finish() {
	s.done = true
	if s.conn.active == s {
		s.conn.active = nil
	}
}

// Row returns the current row after a true Next.
func (s *Stream) Row() storage.Tuple { return s.row }

// Columns returns the column names, available after the first Next (or
// after Next returned false for an empty result).
func (s *Stream) Columns() []string { return s.cols }

// Err returns the stream's terminal error: nil on a clean Done, a
// *wire.RemoteError for a server-side failure, or a transport error.
func (s *Stream) Err() error { return s.err }

// Stats returns the Done frame's summary; valid once Next has returned
// false with a nil Err.
func (s *Stream) Stats() wire.Done { return s.doneInfo }

// Close drains any unread frames so the connection is ready for the
// next query. It returns the stream's error, if any.
func (s *Stream) Close() error {
	for !s.done && s.err == nil {
		if s.idx < len(s.batch) {
			s.idx = len(s.batch)
		}
		s.fetch()
	}
	return s.err
}

// Scatter sends one ShardQuery and consumes the shard stream: fn is
// called for every partition-tagged ShardBatch in arrival order, and the
// worker's ShardDone summary is returned on success. Unlike Query,
// Scatter never resubmits after a connection loss — a shuffle is
// coordinated above this layer, where a partial scatter must be torn
// down (staging tables dropped), not silently retried with rows already
// landed.
func (c *Conn) Scatter(q wire.ShardQuery, fn func(wire.ShardBatch) error) (wire.ShardDone, error) {
	var zero wire.ShardDone
	if c.err != nil {
		if !c.canReconnect() || !errors.Is(c.err, ErrConnectionLost) {
			return zero, c.err
		}
		if err := c.redial(nil); err != nil {
			return zero, c.poison(err)
		}
		c.err = nil
	}
	if c.active != nil {
		return zero, errors.New("client: previous stream not closed")
	}
	if !c.Cluster() {
		return zero, errors.New("client: server did not grant the cluster feature")
	}
	if err := c.tr.write(wire.FrameShardQuery, wire.EncodeShardQuery(q), 0); err != nil {
		return zero, c.poison(&ConnectionLostError{Cause: err})
	}
	var tm *time.Timer
	var timeout <-chan time.Time
	if io := c.opts.IOTimeout; io > 0 {
		tm = time.NewTimer(io)
		defer tm.Stop()
		timeout = tm.C
	}
	for {
		tr := c.tr
		if tm != nil {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			tm.Reset(c.opts.IOTimeout)
		}
		select {
		case m := <-tr.recv:
			switch m.typ {
			case wire.FrameShardBatch:
				b, err := wire.DecodeShardBatch(m.payload)
				if err != nil {
					return zero, c.poison(err)
				}
				if err := fn(b); err != nil {
					// The consumer bailed with frames still in flight; this
					// transport cannot be reused mid-stream. Mark it lost so
					// a reconnect-configured conn heals on its next use.
					c.tr.close()
					c.poison(&ConnectionLostError{Cause: err})
					return zero, err
				}
			case wire.FrameShardDone:
				d, err := wire.DecodeShardDone(m.payload)
				if err != nil {
					return zero, c.poison(err)
				}
				return d, nil
			case wire.FrameError:
				f, err := wire.DecodeError(m.payload)
				if err != nil {
					return zero, c.poison(err)
				}
				rerr := &wire.RemoteError{Frame: f}
				c.noteOverload(rerr)
				// A typed query failure leaves the connection usable.
				return zero, rerr
			default:
				return zero, c.poison(fmt.Errorf("client: unexpected frame 0x%02x during scatter", m.typ))
			}
		case <-tr.done:
			lost := &ConnectionLostError{Cause: tr.readErr}
			return zero, c.poison(lost)
		case <-timeout:
			c.tr.close()
			err := fmt.Errorf("client: no frame within %v: %w", c.opts.IOTimeout, ErrConnectionLost)
			return zero, c.poison(err)
		}
	}
}

// Snapshot asks a worker for a full copy of one table: the table's
// schema comes back first, then fn is called for every RowBatch, and the
// Done summary is returned on success. Like Scatter it never resubmits —
// a rejoin re-ships the whole snapshot from scratch if the link dies.
func (c *Conn) Snapshot(table string, fn func(wire.RowBatch) error) (wire.SnapshotMeta, wire.Done, error) {
	var meta wire.SnapshotMeta
	var done wire.Done
	if c.err != nil {
		return meta, done, c.err
	}
	if c.active != nil {
		return meta, done, errors.New("client: previous stream not closed")
	}
	if !c.Cluster() {
		return meta, done, errors.New("client: server did not grant the cluster feature")
	}
	if err := c.tr.write(wire.FrameSnapshot, wire.EncodeSnapshot(wire.Snapshot{Table: table}), 0); err != nil {
		return meta, done, c.poison(&ConnectionLostError{Cause: err})
	}
	var tm *time.Timer
	var timeout <-chan time.Time
	if io := c.opts.IOTimeout; io > 0 {
		tm = time.NewTimer(io)
		defer tm.Stop()
		timeout = tm.C
	}
	gotMeta := false
	for {
		tr := c.tr
		if tm != nil {
			if !tm.Stop() {
				select {
				case <-tm.C:
				default:
				}
			}
			tm.Reset(c.opts.IOTimeout)
		}
		select {
		case m := <-tr.recv:
			switch m.typ {
			case wire.FrameSnapshotMeta:
				sm, err := wire.DecodeSnapshotMeta(m.payload)
				if err != nil {
					return meta, done, c.poison(err)
				}
				meta, gotMeta = sm, true
			case wire.FrameRowBatch:
				if !gotMeta {
					return meta, done, c.poison(errors.New("client: snapshot rows before meta"))
				}
				b, err := wire.DecodeRowBatch(m.payload)
				if err != nil {
					return meta, done, c.poison(err)
				}
				if err := fn(b); err != nil {
					c.tr.close()
					c.poison(&ConnectionLostError{Cause: err})
					return meta, done, err
				}
			case wire.FrameDone:
				d, err := wire.DecodeDone(m.payload)
				if err != nil {
					return meta, done, c.poison(err)
				}
				if !gotMeta {
					return meta, done, c.poison(errors.New("client: snapshot ended before meta"))
				}
				return meta, d, nil
			case wire.FrameError:
				f, err := wire.DecodeError(m.payload)
				if err != nil {
					return meta, done, c.poison(err)
				}
				rerr := &wire.RemoteError{Frame: f}
				c.noteOverload(rerr)
				// A typed failure (e.g. unknown relation) leaves the
				// connection usable.
				return meta, done, rerr
			default:
				return meta, done, c.poison(fmt.Errorf("client: unexpected frame 0x%02x during snapshot", m.typ))
			}
		case <-tr.done:
			lost := &ConnectionLostError{Cause: tr.readErr}
			return meta, done, c.poison(lost)
		case <-timeout:
			c.tr.close()
			err := fmt.Errorf("client: no frame within %v: %w", c.opts.IOTimeout, ErrConnectionLost)
			return meta, done, c.poison(err)
		}
	}
}

// Result is a fully materialized query result, for callers that do not
// need streaming.
type Result struct {
	Columns []string
	Rows    []storage.Tuple
	Done    wire.Done
}

// Collect runs a query and materializes the whole result.
func (c *Conn) Collect(sql string, opts Options) (*Result, error) {
	st, err := c.Query(sql, opts)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for st.Next() {
		res.Rows = append(res.Rows, append(storage.Tuple(nil), st.Row()...))
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	res.Columns = st.Columns()
	res.Done = st.Stats()
	return res, nil
}
