// Connection pooling. A Conn runs one query stream at a time, so a
// coordinator that wants inter-query parallelism against the same worker
// needs several of them. Pool keeps a small free list of healthy idle
// connections per address: Get reuses one or dials fresh, Put returns a
// connection after a clean exchange, Discard drops one that failed. A
// pooled idle connection still answers server heartbeats from its read
// pump, so it survives idle-session eviction between checkouts.
package client

import (
	"errors"
	"sync"
)

// Healthy reports whether the connection can accept a new request: no
// sticky error, no stream in flight, and a read pump that is still
// running. A false answer is final — pools drop unhealthy conns.
func (c *Conn) Healthy() bool {
	if c.err != nil || c.active != nil {
		return false
	}
	select {
	case <-c.tr.done:
		return false
	default:
		return true
	}
}

// Pool is a free list of connections to one address. Safe for concurrent
// use; the connections it hands out are not (each checkout is exclusive
// until Put or Discard).
type Pool struct {
	addr    string
	opts    DialOptions
	maxIdle int

	mu     sync.Mutex
	idle   []*Conn
	closed bool
}

// NewPool creates a pool dialing addr with opts. maxIdle bounds the free
// list (0 = 4); connections beyond it are closed on Put.
func NewPool(addr string, opts DialOptions, maxIdle int) *Pool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &Pool{addr: addr, opts: opts, maxIdle: maxIdle}
}

// Addr returns the pooled address.
func (p *Pool) Addr() string { return p.addr }

// Get checks out a connection: the most recently returned healthy idle
// one, else a fresh dial. Idle connections that died while pooled (a
// worker restart closes them) are discarded on the way.
func (p *Pool) Get() (*Conn, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, errors.New("client: pool closed")
		}
		if n := len(p.idle); n > 0 {
			c := p.idle[n-1]
			p.idle = p.idle[:n-1]
			p.mu.Unlock()
			if c.Healthy() {
				return c, nil
			}
			c.Close()
			continue
		}
		p.mu.Unlock()
		return DialOpts(p.addr, p.opts)
	}
}

// Put returns a connection to the free list. Unhealthy connections and
// overflow beyond maxIdle are closed instead.
func (p *Pool) Put(c *Conn) {
	if c == nil {
		return
	}
	if !c.Healthy() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle) >= p.maxIdle {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Discard closes a checked-out connection that failed; nothing returns
// to the free list.
func (p *Pool) Discard(c *Conn) {
	if c != nil {
		c.Close()
	}
}

// Close closes every idle connection and rejects future Gets.
// Checked-out connections are the caller's to close.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle, p.closed = nil, true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
