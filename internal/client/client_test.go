package client_test

import (
	"bufio"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/qctx"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/wire"
)

// The client's failure semantics are pinned against a scripted fake
// server: each test controls exactly what happens on the Nth connection
// — refuse, die mid-stream, answer overloaded — which no real server
// can be asked to do deterministically.

// fakeServer runs handler once per accepted connection, passing the
// zero-based connection index.
type fakeServer struct {
	lis   net.Listener
	conns atomic.Int64
}

func newFakeServer(t *testing.T, handler func(idx int, nc net.Conn)) *fakeServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{lis: lis}
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			idx := int(fs.conns.Add(1)) - 1
			go func() {
				defer nc.Close()
				handler(idx, nc)
			}()
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return fs
}

func (fs *fakeServer) addr() string { return fs.lis.Addr().String() }

// serverHandshake performs the server side of the Hello exchange,
// granting every requested feature, and returns the negotiated codec.
func serverHandshake(t *testing.T, nc net.Conn, br *bufio.Reader) wire.Codec {
	t.Helper()
	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.FrameHello {
		t.Errorf("fake server: handshake frame 0x%02x err=%v", typ, err)
		return wire.Codec{}
	}
	h, err := wire.DecodeHello(payload)
	if err != nil {
		t.Error(err)
		return wire.Codec{}
	}
	reply := wire.Hello{Version: wire.Version, Flags: h.Flags, Legacy: h.Legacy}
	if err := wire.WriteFrame(nc, wire.FrameHello, wire.EncodeHello(reply)); err != nil {
		t.Error(err)
	}
	return wire.Codec{Checksums: h.Flags&wire.FeatureChecksum != 0}
}

func readQuery(t *testing.T, codec wire.Codec, br *bufio.Reader) (wire.Query, bool) {
	t.Helper()
	typ, payload, err := codec.ReadFrame(br)
	if err != nil {
		return wire.Query{}, false
	}
	if typ != wire.FrameQuery {
		t.Errorf("fake server: got frame 0x%02x, want Query", typ)
		return wire.Query{}, false
	}
	q, err := wire.DecodeQuery(payload)
	if err != nil {
		t.Error(err)
		return wire.Query{}, false
	}
	return q, true
}

func oneRowResult() (wire.RowBatch, wire.Done) {
	return wire.RowBatch{
		Columns: []string{"K"},
		Rows:    []storage.Tuple{{value.NewInt(42)}},
	}, wire.Done{Rows: 1}
}

// reconnectCfg is a fast deterministic backoff for tests.
func reconnectCfg() *client.ReconnectConfig {
	return &client.ReconnectConfig{BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1}
}

// TestReconnectResubmitsWhenNothingReceived: the first connection dies
// right after the query is submitted — before any RowBatch — so the
// client redials and resubmits transparently; the caller sees only the
// clean result from the second connection.
func TestReconnectResubmitsWhenNothingReceived(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		if _, ok := readQuery(t, codec, br); !ok {
			return
		}
		if idx == 0 {
			return // die without answering: zero batches received
		}
		batch, done := oneRowResult()
		codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
		codec.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(done))
	})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{Reconnect: reconnectCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.Collect("SELECT 1", client.Options{})
	if err != nil {
		t.Fatalf("reconnect did not heal a pre-batch loss: %v", err)
	}
	if len(res.Rows) != 1 || res.Done.Rows != 1 {
		t.Errorf("got %d rows (done=%d), want 1", len(res.Rows), res.Done.Rows)
	}
	if n := fs.conns.Load(); n != 2 {
		t.Errorf("server saw %d connections, want 2 (original + one reconnect)", n)
	}
}

// TestNoResubmitAfterFirstBatch: once a RowBatch has been delivered, a
// dying connection must NOT be resubmitted — a second execution would
// silently duplicate the delivered rows. The stream fails typed.
func TestNoResubmitAfterFirstBatch(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		if _, ok := readQuery(t, codec, br); !ok {
			return
		}
		batch, _ := oneRowResult()
		codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
		// Die mid-stream: batch delivered, no Done.
	})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{Reconnect: reconnectCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Query("SELECT 1", client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for st.Next() {
		rows++
	}
	if rows != 1 {
		t.Errorf("delivered %d rows before the loss, want 1", rows)
	}
	err = st.Err()
	if !errors.Is(err, client.ErrConnectionLost) {
		t.Fatalf("err = %v, want ErrConnectionLost", err)
	}
	var lost *client.ConnectionLostError
	if !errors.As(err, &lost) {
		t.Fatal("error does not expose *ConnectionLostError")
	}
	// Deterministically wait for a possible (forbidden) resubmission to
	// materialize before counting: the backoff ceiling is 20ms.
	time.Sleep(150 * time.Millisecond)
	if n := fs.conns.Load(); n != 1 {
		t.Errorf("server saw %d connections; the post-emission fence leaked a resubmit", n)
	}
}

// TestNextQueryRedialsAfterLoss: a connection poisoned by a mid-stream
// loss heals itself on the NEXT query when reconnection is configured —
// the failed stream's error stands, but the Conn is not bricked.
func TestNextQueryRedialsAfterLoss(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		if _, ok := readQuery(t, codec, br); !ok {
			return
		}
		batch, done := oneRowResult()
		codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
		if idx == 0 {
			return // first query dies after its batch
		}
		codec.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(done))
	})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{Reconnect: reconnectCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Collect("SELECT 1", client.Options{}); !errors.Is(err, client.ErrConnectionLost) {
		t.Fatalf("first query: err = %v, want ErrConnectionLost", err)
	}
	res, err := c.Collect("SELECT 1", client.Options{})
	if err != nil {
		t.Fatalf("second query on a healable conn: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("second query got %d rows, want 1", len(res.Rows))
	}
}

// TestOverloadRetryAfterSurvivesReconnect: a server that sheds with a
// retry-after hint and then drops the connection must not be redialed
// before the hint expires — the floor carries across the reconnect.
func TestOverloadRetryAfterSurvivesReconnect(t *testing.T) {
	const hint = 400 * time.Millisecond
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		if _, ok := readQuery(t, codec, br); !ok {
			return
		}
		if idx == 0 {
			codec.WriteFrame(nc, wire.FrameError, wire.EncodeError(wire.ErrorFrame{
				Code: wire.CodeOverloaded, Message: "shed", RetryAfter: hint,
			}))
			return // hang up after shedding
		}
		batch, done := oneRowResult()
		codec.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
		codec.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(done))
	})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{Reconnect: reconnectCfg()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Collect("SELECT 1", client.Options{})
	var ov *qctx.OverloadError
	if !errors.As(err, &ov) || ov.RetryAfter != hint {
		t.Fatalf("err = %v, want OverloadError carrying %v", err, hint)
	}

	// The overload shed is a query answer, not a connection loss — but
	// the server hung up right after it, so this Query must redial. The
	// redial has to respect the server's hint, not the 5ms backoff.
	start := time.Now()
	res, err := c.Collect("SELECT 1", client.Options{})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("retry after shed: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("got %d rows, want 1", len(res.Rows))
	}
	if elapsed < hint/2 {
		t.Errorf("redial raced the retry-after floor: resubmitted after %v, hint was %v", elapsed, hint)
	}
}

// TestCancelDuringReconnect: closing the Cancel channel while the
// client sleeps in reconnect backoff aborts promptly with ErrCanceled —
// the caller is never held hostage by a retry schedule.
func TestCancelDuringReconnect(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		readQuery(t, codec, br)
		// Always die: the client will keep reconnecting until canceled.
	})
	cancel := make(chan struct{})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{
		Reconnect: &client.ReconnectConfig{
			BaseDelay: 2 * time.Second, MaxDelay: 2 * time.Second, MaxAttempts: 10, Seed: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	go func() {
		time.Sleep(100 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	_, err = c.Collect("SELECT 1", client.Options{Cancel: cancel})
	elapsed := time.Since(start)
	if !errors.Is(err, qctx.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if elapsed > time.Second {
		t.Errorf("cancel took %v to take effect; backoff sleep ignored the channel", elapsed)
	}
}

// TestDialDowngradesForLegacyServer: a server that rejects the extended
// Hello as a protocol error (the pre-feature protocol) gets one more
// dial with the legacy five-byte form, and the connection works —
// without checksums or heartbeats.
func TestDialDowngradesForLegacyServer(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		typ, payload, err := wire.ReadFrame(br)
		if err != nil || typ != wire.FrameHello {
			return
		}
		// A pre-feature server: five bytes or nothing.
		if len(payload) != 5 {
			wire.WriteFrame(nc, wire.FrameError, wire.EncodeError(wire.ErrorFrame{
				Code: wire.CodeProtocol, Message: "bad hello payload",
			}))
			return
		}
		wire.WriteFrame(nc, wire.FrameHello, wire.EncodeHello(wire.Hello{Version: wire.Version, Legacy: true}))
		q, ok := readQuery(t, wire.Codec{}, br)
		if !ok || q.SQL == "" {
			return
		}
		batch, done := oneRowResult()
		wire.WriteFrame(nc, wire.FrameRowBatch, wire.EncodeRowBatch(batch))
		wire.WriteFrame(nc, wire.FrameDone, wire.EncodeDone(done))
	})
	c, err := client.Dial(fs.addr(), 5*time.Second)
	if err != nil {
		t.Fatalf("downgrade dial failed: %v", err)
	}
	defer c.Close()
	if c.Checksums() || c.Heartbeats() {
		t.Error("legacy downgrade still claims negotiated features")
	}
	res, err := c.Collect("SELECT 1", client.Options{})
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("legacy-mode query: rows=%d err=%v", len(res.Rows), err)
	}
	if n := fs.conns.Load(); n != 2 {
		t.Errorf("server saw %d connections, want 2 (rejected extended + legacy retry)", n)
	}
}

// TestClientAnswersPings: the read pump answers a server Ping with a
// Pong echoing the sequence, even while the caller is idle.
func TestClientAnswersPings(t *testing.T) {
	gotPong := make(chan uint64, 1)
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		if err := codec.WriteFrame(nc, wire.FramePing, wire.EncodePing(7)); err != nil {
			return
		}
		typ, payload, err := codec.ReadFrame(br)
		if err != nil || typ != wire.FramePong {
			t.Errorf("fake server: got frame 0x%02x err=%v, want Pong", typ, err)
			return
		}
		seq, err := wire.DecodePing(payload)
		if err != nil {
			t.Error(err)
			return
		}
		gotPong <- seq
	})
	c, err := client.Dial(fs.addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	select {
	case seq := <-gotPong:
		if seq != 7 {
			t.Errorf("pong echoed seq %d, want 7", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle client never answered the ping")
	}
}

// TestIOTimeoutSurfacesTyped: a server that accepts a query and then
// goes silent (a partition without RST) trips the client's IOTimeout
// with an error matching ErrConnectionLost instead of hanging forever.
func TestIOTimeoutSurfacesTyped(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		readQuery(t, codec, br)
		time.Sleep(10 * time.Second) // silence, connection held open
	})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{IOTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	_, err = c.Collect("SELECT 1", client.Options{})
	if !errors.Is(err, client.ErrConnectionLost) {
		t.Fatalf("err = %v, want ErrConnectionLost via IOTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("IOTimeout of 200ms surfaced after %v", elapsed)
	}
}

// TestReconnectGivesUpTyped: when every redial fails, the final error
// still matches ErrConnectionLost (wrapped in the give-up report).
func TestReconnectGivesUpTyped(t *testing.T) {
	fs := newFakeServer(t, func(idx int, nc net.Conn) {
		br := bufio.NewReader(nc)
		codec := serverHandshake(t, nc, br)
		readQuery(t, codec, br)
	})
	c, err := client.DialOpts(fs.addr(), client.DialOptions{
		Reconnect: &client.ReconnectConfig{
			BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, MaxAttempts: 2, Seed: 1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fs.lis.Close() // every redial now fails outright
	_, err = c.Collect("SELECT 1", client.Options{})
	if err == nil {
		t.Fatal("query succeeded against a dead server")
	}
}
