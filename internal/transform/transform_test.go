package transform_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/transform"
	"repro/internal/workload"
)

// prep parses and resolves a query against a loaded fixture database.
func prep(t *testing.T, load func(*workload.DB) error, src string) (*workload.DB, *ast.QueryBlock) {
	t.Helper()
	db := workload.NewDB(8)
	if err := load(db); err != nil {
		t.Fatal(err)
	}
	qb, err := sqlparser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return db, qb
}

func mustTransform(t *testing.T, db *workload.DB, qb *ast.QueryBlock, v transform.Variant) *transform.Result {
	t.Helper()
	res, err := transform.New(db.Cat, v).Transform(qb)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	return res
}

// wantSQL compares generated SQL text exactly (the paper presents every
// transformation as SQL; these assertions pin our output to its examples).
func wantSQL(t *testing.T, got, want string) {
	t.Helper()
	if got != want {
		t.Errorf("SQL mismatch:\n  got:  %s\n  want: %s", got, want)
	}
}

// Section 6.1: NEST-JA2 applied to Kiessling's query Q2 produces exactly
// the paper's three steps.
func TestJA2KiesslingQ2Steps(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2)
	res := mustTransform(t, db, qb, transform.JA2)

	if len(res.Temps) != 3 {
		t.Fatalf("temps = %d, want 3", len(res.Temps))
	}
	wantSQL(t, res.Temps[0].Def.String(),
		"SELECT DISTINCT PARTS.PNUM FROM PARTS")
	wantSQL(t, res.Temps[1].Def.String(),
		"SELECT SUPPLY.PNUM, SUPPLY.SHIPDATE FROM SUPPLY WHERE SUPPLY.SHIPDATE < 1-1-80")
	wantSQL(t, res.Temps[2].Def.String(),
		"SELECT TEMP1.PNUM, COUNT(TEMP2.SHIPDATE) AS CT FROM TEMP1, TEMP2 "+
			"WHERE TEMP1.PNUM =+ TEMP2.PNUM GROUP BY TEMP1.PNUM")
	wantSQL(t, res.Query.String(),
		"SELECT PARTS.PNUM FROM PARTS, TEMP3 "+
			"WHERE PARTS.QOH = TEMP3.CT AND TEMP3.PNUM <=> PARTS.PNUM")

	// Temp schemas carry usable column definitions.
	if res.Temps[2].Rel.Columns[1].Name != "CT" {
		t.Errorf("TEMP3 columns = %+v", res.Temps[2].Rel.Columns)
	}
}

// Section 5.2.1: COUNT(*) must be converted to COUNT over the inner join
// column.
func TestJA2CountStarConversion(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2CountStar)
	res := mustTransform(t, db, qb, transform.JA2)
	temp3 := res.Temps[2].Def.String()
	if !strings.Contains(temp3, "COUNT(TEMP2.PNUM) AS CT") {
		t.Errorf("COUNT(*) not converted to inner join column:\n%s", temp3)
	}
}

// Section 5.3.1: the non-equality operator is used (flipped onto the
// projection side) in the temp creation, and the rewritten query uses
// equality; no outer join and no inner restriction temp are needed for
// MAX.
func TestJA2NonEquality(t *testing.T) {
	db, qb := prep(t, workload.LoadNonEquality, workload.GanskiQ5)
	res := mustTransform(t, db, qb, transform.JA2)
	if len(res.Temps) != 2 {
		t.Fatalf("temps = %d, want 2 (no TEMP2 for MAX)", len(res.Temps))
	}
	wantSQL(t, res.Temps[0].Def.String(),
		"SELECT DISTINCT PARTS.PNUM FROM PARTS")
	wantSQL(t, res.Temps[1].Def.String(),
		"SELECT TEMP1.PNUM, MAX(SUPPLY.QUAN) AS MAXQUAN FROM TEMP1, SUPPLY "+
			"WHERE SUPPLY.SHIPDATE < 1-1-80 AND TEMP1.PNUM > SUPPLY.PNUM "+
			"GROUP BY TEMP1.PNUM")
	wantSQL(t, res.Query.String(),
		"SELECT PARTS.PNUM FROM PARTS, TEMP2 "+
			"WHERE PARTS.QOH = TEMP2.MAXQUAN AND TEMP2.PNUM <=> PARTS.PNUM")
}

// Kim's NEST-JA on Q2 reproduces the buggy transformation of section 5.1:
// the temp table is grouped over the inner relation alone.
func TestKimJAKiesslingQ2(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2)
	res := mustTransform(t, db, qb, transform.KimJA)
	if len(res.Temps) != 1 {
		t.Fatalf("temps = %d, want 1", len(res.Temps))
	}
	wantSQL(t, res.Temps[0].Def.String(),
		"SELECT SUPPLY.PNUM, COUNT(SUPPLY.SHIPDATE) AS CT FROM SUPPLY "+
			"WHERE SUPPLY.SHIPDATE < 1-1-80 GROUP BY SUPPLY.PNUM")
	wantSQL(t, res.Query.String(),
		"SELECT PARTS.PNUM FROM PARTS, TEMP1 "+
			"WHERE PARTS.QOH = TEMP1.CT AND TEMP1.PNUM = PARTS.PNUM")
}

// Kim's NEST-JA on Q5 keeps the original "<" operator in the final join —
// the section 5.3 bug, faithfully reproduced.
func TestKimJANonEqualityKeepsOperator(t *testing.T) {
	db, qb := prep(t, workload.LoadNonEquality, workload.GanskiQ5)
	res := mustTransform(t, db, qb, transform.KimJA)
	wantSQL(t, res.Temps[0].Def.String(),
		"SELECT SUPPLY.PNUM, MAX(SUPPLY.QUAN) AS MAXQUAN FROM SUPPLY "+
			"WHERE SUPPLY.SHIPDATE < 1-1-80 GROUP BY SUPPLY.PNUM")
	wantSQL(t, res.Query.String(),
		"SELECT PARTS.PNUM FROM PARTS, TEMP1 "+
			"WHERE PARTS.QOH = TEMP1.MAXQUAN AND TEMP1.PNUM < PARTS.PNUM")
}

// Section 3.1: NEST-N-J flattens type-N nesting into a join, IS IN -> =.
func TestNestNJTypeN(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNO FROM SP
		WHERE PNO IS IN (SELECT PNO FROM P WHERE WEIGHT > 15)`)
	res := mustTransform(t, db, qb, transform.JA2)
	if len(res.Temps) != 0 {
		t.Fatalf("NEST-N-J must not create temps, got %d", len(res.Temps))
	}
	wantSQL(t, res.Query.String(),
		"SELECT SP.SNO FROM SP, P WHERE SP.PNO = P.PNO AND P.WEIGHT > 15")
}

// Section 3.1 applied to type-J (the paper's example 4).
func TestNestNJTypeJ(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNAME FROM S
		WHERE SNO IS IN (SELECT SNO FROM SP
		                 WHERE QTY > 100 AND SP.ORIGIN = S.CITY)`)
	res := mustTransform(t, db, qb, transform.JA2)
	wantSQL(t, res.Query.String(),
		"SELECT S.SNAME FROM S, SP "+
			"WHERE S.SNO = SP.SNO AND SP.QTY > 100 AND SP.ORIGIN = S.CITY")
}

// Multi-level type-N nesting flattens fully (the algorithm "applies to
// type-N or type-J nested queries with one or more levels of nesting").
func TestNestNJMultiLevel(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP
		              WHERE PNO IN (SELECT PNO FROM P WHERE WEIGHT > 15))`)
	res := mustTransform(t, db, qb, transform.JA2)
	wantSQL(t, res.Query.String(),
		"SELECT S.SNAME FROM S, SP, P "+
			"WHERE S.SNO = SP.SNO AND SP.PNO = P.PNO AND P.WEIGHT > 15")
}

// FROM-clause merging renames colliding bindings and rewrites references.
func TestNestNJAliasCollision(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNO FROM SP
		WHERE QTY IN (SELECT QTY FROM SP WHERE PNO = 'P2')`)
	res := mustTransform(t, db, qb, transform.JA2)
	got := res.Query.String()
	want := "SELECT SP.SNO FROM SP, SP SP_1 " +
		"WHERE SP.QTY = SP_1.QTY AND SP_1.PNO = 'P2'"
	wantSQL(t, got, want)
}

// Type-A blocks are preserved as constant subqueries (evaluated once at
// execution), and IN against an aggregate block becomes =.
func TestTypeAPreserved(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNO FROM SP WHERE PNO = (SELECT MAX(PNO) FROM P)`)
	res := mustTransform(t, db, qb, transform.JA2)
	wantSQL(t, res.Query.String(),
		"SELECT SP.SNO FROM SP WHERE SP.PNO = (SELECT MAX(P.PNO) FROM P)")

	db, qb = prep(t, workload.LoadSuppliers, `
		SELECT SNO FROM SP WHERE PNO IN (SELECT MAX(PNO) FROM P)`)
	res = mustTransform(t, db, qb, transform.JA2)
	wantSQL(t, res.Query.String(),
		"SELECT SP.SNO FROM SP WHERE SP.PNO = (SELECT MAX(P.PNO) FROM P)")
}

// Section 8.1: EXISTS becomes 0 < COUNT(*), then the correlated COUNT goes
// through NEST-JA2 with the COUNT(*) conversion.
func TestExistsRewriteFullPipeline(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, `
		SELECT PNUM FROM PARTS
		WHERE EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	res := mustTransform(t, db, qb, transform.JA2)
	if len(res.Temps) != 3 {
		t.Fatalf("temps = %d, want 3", len(res.Temps))
	}
	final := res.Query.String()
	if !strings.Contains(final, "0 < TEMP3.CT") {
		t.Errorf("EXISTS final query lacks 0 < CT: %s", final)
	}
	temp3 := res.Temps[2].Def.String()
	if !strings.Contains(temp3, "COUNT(TEMP2.PNUM)") {
		t.Errorf("COUNT(*) not converted in EXISTS pipeline: %s", temp3)
	}
}

// Section 8.1: NOT EXISTS becomes 0 = COUNT(*).
func TestNotExistsRewrite(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, `
		SELECT PNUM FROM PARTS
		WHERE NOT EXISTS (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	res := mustTransform(t, db, qb, transform.JA2)
	if !strings.Contains(res.Query.String(), "0 = TEMP3.CT") {
		t.Errorf("NOT EXISTS final query: %s", res.Query.String())
	}
}

// Section 8.2: quantified comparisons become scalar aggregates.
func TestQuantRewrites(t *testing.T) {
	cases := []struct {
		src      string
		wantFrag string
	}{
		{"SELECT PNUM FROM PARTS WHERE QOH < ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
			"MAXQUAN"},
		{"SELECT PNUM FROM PARTS WHERE QOH > ANY (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
			"MINQUAN"},
		{"SELECT PNUM FROM PARTS WHERE QOH < ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
			"MINQUAN"},
		{"SELECT PNUM FROM PARTS WHERE QOH >= ALL (SELECT QUAN FROM SUPPLY WHERE SUPPLY.PNUM = PARTS.PNUM)",
			"MAXQUAN"},
	}
	for _, c := range cases {
		db, qb := prep(t, workload.LoadKiessling, c.src)
		res := mustTransform(t, db, qb, transform.JA2)
		if got := res.Query.String(); !strings.Contains(got, c.wantFrag) {
			t.Errorf("%q:\n  final %s lacks %s", c.src, got, c.wantFrag)
		}
	}
	// = ANY becomes IN and is then flattened as type-N/J.
	db, qb := prep(t, workload.LoadSuppliers,
		"SELECT SNO FROM SP WHERE PNO = ANY (SELECT PNO FROM P WHERE WEIGHT > 15)")
	res := mustTransform(t, db, qb, transform.JA2)
	wantSQL(t, res.Query.String(),
		"SELECT SP.SNO FROM SP, P WHERE SP.PNO = P.PNO AND P.WEIGHT > 15")
}

// Section 9.1: a correlated reference two levels down, crossing the
// aggregate block, migrates up through NEST-N-J and is then resolved by
// NEST-JA2 — the Figure 2 walk-through.
func TestNestGTransAggregate(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNAME FROM S
		WHERE STATUS = (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P WHERE P.CITY = S.CITY))`)
	res := mustTransform(t, db, qb, transform.JA2)
	if len(res.Temps) != 2 {
		t.Fatalf("temps = %d, want 2", len(res.Temps))
	}
	wantSQL(t, res.Temps[0].Def.String(),
		"SELECT DISTINCT S.CITY FROM S")
	wantSQL(t, res.Temps[1].Def.String(),
		"SELECT TEMP1.CITY, MAX(SP.QTY) AS MAXQTY FROM TEMP1, SP, P "+
			"WHERE SP.PNO = P.PNO AND TEMP1.CITY = P.CITY GROUP BY TEMP1.CITY")
	wantSQL(t, res.Query.String(),
		"SELECT S.SNAME FROM S, TEMP2 "+
			"WHERE S.STATUS = TEMP2.MAXQTY AND TEMP2.CITY <=> S.CITY")
}

// Section 6, step 1: the outer block's simple predicates restrict the
// projection of the outer join column.
func TestJA2OuterSimplePredicatesInProjection(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, `
		SELECT PNUM FROM PARTS
		WHERE QOH > 0 AND
		      QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	res := mustTransform(t, db, qb, transform.JA2)
	wantSQL(t, res.Temps[0].Def.String(),
		"SELECT DISTINCT PARTS.PNUM FROM PARTS WHERE PARTS.QOH > 0")
	// The simple predicate also remains in the outer query.
	if !strings.Contains(res.Query.String(), "PARTS.QOH > 0") {
		t.Errorf("outer simple predicate dropped: %s", res.Query.String())
	}
}

// Queries outside the algorithms' scope fail with ErrNotTransformable so
// the engine can fall back to nested iteration.
func TestNotTransformable(t *testing.T) {
	cases := []string{
		// Subquery under OR.
		"SELECT SNO FROM SP WHERE QTY > 100 OR PNO IN (SELECT PNO FROM P WHERE WEIGHT > 15)",
		// = ALL has no rewrite.
		"SELECT SNO FROM SP WHERE PNO = ALL (SELECT PNO FROM P WHERE WEIGHT > 15)",
		// NOT IN over a non-flat inner block (DISTINCT) cannot become an
		// anti-join and must fall back.
		"SELECT SNO FROM SP WHERE PNO NOT IN (SELECT DISTINCT PNO FROM P WHERE WEIGHT > 15)",
	}
	for _, src := range cases {
		db, qb := prep(t, workload.LoadSuppliers, src)
		_, err := transform.New(db.Cat, transform.JA2).Transform(qb)
		if !errors.Is(err, transform.ErrNotTransformable) {
			t.Errorf("%q: err = %v, want ErrNotTransformable", src, err)
		}
	}
}

// NOT IN over a flat inner block is retained in the canonical form for
// NULL-aware anti-join execution (extension beyond the paper; != ANY
// rewrites into the same path).
func TestNotInRetainedForAntiJoin(t *testing.T) {
	for _, src := range []string{
		"SELECT SNO FROM SP WHERE PNO NOT IN (SELECT PNO FROM P WHERE WEIGHT > 15)",
		"SELECT SNO FROM SP WHERE PNO != ANY (SELECT PNO FROM P WHERE WEIGHT > 15)",
	} {
		db, qb := prep(t, workload.LoadSuppliers, src)
		res := mustTransform(t, db, qb, transform.JA2)
		if len(res.Query.Where) != 1 {
			t.Fatalf("%q: conjuncts = %d", src, len(res.Query.Where))
		}
		in, ok := res.Query.Where[0].(*ast.InPred)
		if !ok || !in.Negated {
			t.Errorf("%q: retained predicate = %T", src, res.Query.Where[0])
		}
	}
}

// Correlation referencing two different outer relations is out of scope.
func TestJA2MultiOuterCorrelationRejected(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNAME FROM S, P
		WHERE S.CITY = P.CITY AND
		      S.STATUS = (SELECT MAX(QTY) FROM SP
		                  WHERE SP.SNO = S.SNO AND SP.PNO = P.PNO)`)
	_, err := transform.New(db.Cat, transform.JA2).Transform(qb)
	if !errors.Is(err, transform.ErrNotTransformable) {
		t.Errorf("err = %v, want ErrNotTransformable", err)
	}
}

// The transformer never mutates its input.
func TestTransformDoesNotMutateInput(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2)
	before := qb.String()
	mustTransform(t, db, qb, transform.JA2)
	if qb.String() != before {
		t.Errorf("input mutated:\n  before: %s\n  after:  %s", before, qb.String())
	}
}

// Steps trace records every rule application.
func TestStepsTrace(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2)
	res := mustTransform(t, db, qb, transform.JA2)
	var rules []string
	for _, s := range res.Steps {
		rules = append(rules, s.Rule)
	}
	joined := strings.Join(rules, " ")
	for _, want := range []string{"CREATE TEMP1", "CREATE TEMP2", "CREATE TEMP3", "NEST-JA2"} {
		if !strings.Contains(joined, want) {
			t.Errorf("steps %v missing %q", rules, want)
		}
	}
}

// Temp names skip existing catalog relations.
func TestTempNameCollisionAvoidance(t *testing.T) {
	db := workload.NewDB(8)
	if err := workload.LoadKiessling(db); err != nil {
		t.Fatal(err)
	}
	if err := db.Cat.Define(&schema.Relation{
		Name:    "TEMP1",
		Columns: []schema.Column{{Name: "X"}},
	}); err != nil {
		t.Fatal(err)
	}
	qb := sqlparser.MustParse(workload.KiesslingQ2)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	res := mustTransform(t, db, qb, transform.JA2)
	for _, temp := range res.Temps {
		if temp.Name == "TEMP1" {
			t.Errorf("temp name collides with existing relation TEMP1")
		}
	}
}

// Variant naming for traces.
func TestVariantString(t *testing.T) {
	if transform.JA2.String() != "NEST-JA2" || transform.KimJA.String() != "NEST-JA (Kim)" {
		t.Errorf("variant names: %s / %s", transform.JA2, transform.KimJA)
	}
}

// Two type-JA predicates in one WHERE clause each get their own temp
// program; both reduce to equality joins.
func TestTwoJAPredicatesInOneBlock(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT COUNT(QUAN) FROM SUPPLY
		             WHERE SUPPLY.PNUM = PARTS.PNUM) AND
		      QOH <= (SELECT MAX(QUAN) FROM SUPPLY
		              WHERE SUPPLY.PNUM = PARTS.PNUM)`)
	res := mustTransform(t, db, qb, transform.JA2)
	// COUNT branch: TEMP1 (projection), TEMP2 (restricted inner), TEMP3
	// (grouped); MAX branch: TEMP4 (projection), TEMP5 (grouped).
	if len(res.Temps) != 5 {
		t.Fatalf("temps = %d, want 5", len(res.Temps))
	}
	final := res.Query.String()
	for _, frag := range []string{"TEMP3.CT", "TEMP5.MAXQUAN", "TEMP3.PNUM <=> PARTS.PNUM", "TEMP5.PNUM <=> PARTS.PNUM"} {
		if !strings.Contains(final, frag) {
			t.Errorf("final query missing %q:\n%s", frag, final)
		}
	}
}

// A type-JA block nested inside another type-JA block: the inner pair is
// transformed first (postorder), producing temps that the outer
// transformation then treats as ordinary inner relations.
func TestJAInsideJA(t *testing.T) {
	db, qb := prep(t, workload.LoadSuppliers, `
		SELECT SNAME FROM S
		WHERE STATUS = (SELECT MAX(QTY) FROM SP
		                WHERE SP.QTY = (SELECT COUNT(PNO) FROM P
		                                WHERE P.CITY = SP.ORIGIN) AND
		                      SP.SNO = S.SNO)`)
	res := mustTransform(t, db, qb, transform.JA2)
	if len(res.Temps) < 3 {
		t.Fatalf("temps = %d, want >= 3", len(res.Temps))
	}
	// The innermost COUNT correlates to SP (the middle block), so its
	// projection is over SP.ORIGIN.
	wantSQL(t, res.Temps[0].Def.String(), "SELECT DISTINCT SP.ORIGIN FROM SP")
	// The final query is flat.
	if res.Query.HasNestedPredicate() {
		t.Errorf("final query still nested: %s", res.Query)
	}
}

// ORDER BY survives transformation on the outermost block.
func TestTransformKeepsOrderBy(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2+" ORDER BY PNUM DESC")
	res := mustTransform(t, db, qb, transform.JA2)
	if !strings.Contains(res.Query.String(), "ORDER BY PNUM DESC") {
		t.Errorf("ORDER BY lost: %s", res.Query)
	}
}

// An inner alias that collides with a generated temp name cannot be merged
// into the temp-creation join; the engine falls back rather than produce
// an ambiguous FROM clause.
func TestJA2InnerAliasCollidesWithTempName(t *testing.T) {
	db, qb := prep(t, workload.LoadNonEquality, `
		SELECT PNUM FROM PARTS
		WHERE QOH = (SELECT MAX(TEMP1.QUAN) FROM SUPPLY TEMP1
		             WHERE TEMP1.PNUM < PARTS.PNUM)`)
	_, err := transform.New(db.Cat, transform.JA2).Transform(qb)
	if !errors.Is(err, transform.ErrNotTransformable) {
		t.Errorf("err = %v, want ErrNotTransformable", err)
	}
}

// An outer alias equal to a generated temp name: harmless for NEST-JA2
// (the temp appears only in later definitions' FROM clauses, a separate
// scope) but ambiguous for Kim's variant, which merges its temp into the
// outer FROM clause and must therefore fall back.
func TestJAOuterAliasCollidesWithTempName(t *testing.T) {
	src := `
		SELECT TEMP1.PNUM FROM PARTS TEMP1
		WHERE TEMP1.QOH = (SELECT MAX(QUAN) FROM SUPPLY
		                   WHERE SUPPLY.PNUM = TEMP1.PNUM)`
	db, qb := prep(t, workload.LoadNonEquality, src)
	res := mustTransform(t, db, qb, transform.JA2)
	if len(res.Temps) != 2 {
		t.Errorf("JA2 temps = %d", len(res.Temps))
	}
	db2, qb2 := prep(t, workload.LoadNonEquality, src)
	_, err := transform.New(db2.Cat, transform.KimJA).Transform(qb2)
	if !errors.Is(err, transform.ErrNotTransformable) {
		t.Errorf("Kim: err = %v, want ErrNotTransformable", err)
	}
}
