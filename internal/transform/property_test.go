package transform_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/transform"
	"repro/internal/workload"
)

// Structural invariants of the transformation, checked over a family of
// randomly shaped type-JA queries:
//
//  1. The canonical query has no nested predicates.
//  2. Every temp definition is itself flat (temps may only contain
//     residual type-A constants, never correlation).
//  3. No free references remain anywhere: each block's references bind in
//     its own FROM clause (or, for type-A constants, inside themselves).
//  4. Every relation mentioned in FROM clauses is either a base relation
//     or a temp defined earlier in the program.
//  5. The outermost SELECT clause is retained verbatim.
func TestCanonicalFormInvariants(t *testing.T) {
	aggs := []string{"COUNT(QUAN)", "COUNT(*)", "MAX(QUAN)", "MIN(QUAN)", "SUM(QUAN)"}
	jops := []string{"=", "<", ">="}
	sops := []string{"=", "<"}
	rng := rand.New(rand.NewSource(11))
	for round := range 60 {
		agg := aggs[rng.Intn(len(aggs))]
		jop := jops[rng.Intn(len(jops))]
		sop := sops[rng.Intn(len(sops))]
		simple := ""
		if rng.Intn(2) == 0 {
			simple = fmt.Sprintf("QOH > %d AND ", rng.Intn(3))
		}
		src := fmt.Sprintf(`
			SELECT PNUM FROM PARTS
			WHERE %sQOH %s (SELECT %s FROM SUPPLY
			                WHERE SUPPLY.PNUM %s PARTS.PNUM AND SHIPDATE < 1-1-80)`,
			simple, sop, agg, jop)
		db, qb := prep(t, workload.LoadKiessling, src)
		origSelect := fmt.Sprint(qb.Select)
		res := mustTransform(t, db, qb, transform.JA2)

		if res.Query.HasNestedPredicate() {
			t.Fatalf("round %d: canonical query still nested: %s", round, res.Query)
		}
		known := map[string]bool{}
		for _, name := range db.Cat.Names() {
			known[strings.ToUpper(name)] = true
		}
		checkBlock := func(label string, b *ast.QueryBlock) {
			for _, tr := range b.From {
				if !known[strings.ToUpper(tr.Relation)] {
					t.Fatalf("round %d: %s references undefined relation %s", round, label, tr.Relation)
				}
			}
			if refs := ast.FreeRefs(b); len(refs) > 0 {
				t.Fatalf("round %d: %s has free references %v", round, label, refs)
			}
		}
		for _, temp := range res.Temps {
			if temp.Def.HasNestedPredicate() {
				// Only type-A constants may remain, and they are
				// uncorrelated by definition.
				for _, p := range temp.Def.Where {
					if sub := ast.SubqueryOf(p); sub != nil && ast.IsCorrelated(sub) {
						t.Fatalf("round %d: temp %s retains correlation: %s", round, temp.Name, temp.Def)
					}
				}
			}
			checkBlock("temp "+temp.Name, temp.Def)
			known[strings.ToUpper(temp.Name)] = true
		}
		checkBlock("final query", res.Query)
		if got := fmt.Sprint(res.Query.Select); got != origSelect {
			t.Fatalf("round %d: outer SELECT changed: %s -> %s", round, origSelect, got)
		}
	}
}

// The transformation is deterministic: same input, same program.
func TestTransformDeterministic(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2)
	a := mustTransform(t, db, qb, transform.JA2)
	b := mustTransform(t, db, qb, transform.JA2)
	if a.Query.String() != b.Query.String() || len(a.Temps) != len(b.Temps) {
		t.Fatal("transformation not deterministic")
	}
	for i := range a.Temps {
		if a.Temps[i].Def.String() != b.Temps[i].Def.String() {
			t.Fatalf("temp %d differs", i)
		}
	}
}

// Resolving and re-parsing the generated program round-trips: every temp
// definition and the final query are themselves valid SQL over the schema
// extended with the earlier temps.
func TestGeneratedProgramReparses(t *testing.T) {
	db, qb := prep(t, workload.LoadKiessling, workload.KiesslingQ2)
	res := mustTransform(t, db, qb, transform.JA2)
	for _, temp := range res.Temps {
		reparsed, err := sqlparser.Parse(temp.Def.String())
		if err != nil {
			t.Fatalf("temp %s does not re-parse: %v", temp.Name, err)
		}
		if _, err := schema.Resolve(db.Cat, reparsed); err != nil {
			t.Fatalf("temp %s does not re-resolve: %v", temp.Name, err)
		}
		if err := db.Cat.Define(temp.Rel); err != nil {
			t.Fatal(err)
		}
	}
	reparsed, err := sqlparser.Parse(res.Query.String())
	if err != nil {
		t.Fatalf("final query does not re-parse: %v", err)
	}
	if _, err := schema.Resolve(db.Cat, reparsed); err != nil {
		t.Fatalf("final query does not re-resolve: %v", err)
	}
}
