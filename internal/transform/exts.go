package transform

import (
	"repro/internal/ast"
	"repro/internal/value"
)

// rewriteExtended implements the section 8 extensions, rewriting EXISTS /
// NOT EXISTS / ANY / ALL predicates into forms the core algorithms handle.
// Predicates that are not extended forms pass through unchanged.
func (t *Transformer) rewriteExtended(p ast.Predicate) (ast.Predicate, error) {
	switch p := p.(type) {
	case *ast.ExistsPred:
		return t.rewriteExists(p), nil
	case *ast.QuantPred:
		return t.rewriteQuant(p)
	default:
		return p, nil
	}
}

// rewriteExists turns EXISTS into 0 < (SELECT COUNT ...) and NOT EXISTS
// into 0 = (SELECT COUNT ...) (section 8.1). The resulting predicate is
// then handled as type-A or type-JA depending on the inner block.
//
// The paper writes COUNT(selitems); we emit COUNT(*) because existence
// must count rows, not non-NULL values of the selected column — NEST-JA2's
// COUNT(*) rule (section 5.2.1) then converts it to a COUNT over the inner
// join column, which is exactly the existence witness.
func (t *Transformer) rewriteExists(p *ast.ExistsPred) ast.Predicate {
	count := p.Sub.Clone()
	count.Select = []ast.SelectItem{{Agg: value.AggCountStar}}
	count.Distinct = false
	op := value.OpLt // 0 < COUNT(...)
	name := "EXISTS"
	if p.Negated {
		op = value.OpEq // 0 = COUNT(...)
		name = "NOT EXISTS"
	}
	out := &ast.Comparison{
		Left:  ast.Const{Val: value.NewInt(0)},
		Op:    op,
		Right: &ast.Subquery{Block: count},
	}
	t.addStep("EXTEND", "%s rewritten to %s", name, out.String())
	return out
}

// rewriteQuant implements section 8.2:
//
//	x <  ANY S  ->  x <  (SELECT MAX(item) ...)      (likewise <=)
//	x >  ANY S  ->  x >  (SELECT MIN(item) ...)      (likewise >=)
//	x <  ALL S  ->  x <  (SELECT MIN(item) ...)      (likewise <=)
//	x >  ALL S  ->  x >  (SELECT MAX(item) ...)      (likewise >=)
//	x =  ANY S  ->  x IN S
//	x != ANY S  ->  x NOT IN S
//	x != ALL S  ->  x NOT IN S
//
// The paper calls these "logically (but not necessarily semantically)
// equivalent": over an empty set, x < ALL S is TRUE but x < MIN(S) is
// unknown (MIN({}) = NULL). This reproduction follows the paper; the
// engine's differential tests document the divergence explicitly.
//
// x = ALL has no aggregate form and is rejected (callers fall back to
// nested iteration).
func (t *Transformer) rewriteQuant(p *ast.QuantPred) (ast.Predicate, error) {
	if p.Op == value.OpEq && p.Quant == ast.Any {
		out := &ast.InPred{Left: p.Left, Sub: p.Sub}
		t.addStep("EXTEND", "= ANY rewritten to IN")
		return out, nil
	}
	if p.Op == value.OpNe && (p.Quant == ast.Any || p.Quant == ast.All) {
		out := &ast.InPred{Left: p.Left, Sub: p.Sub, Negated: true}
		t.addStep("EXTEND", "!= %s rewritten to NOT IN", p.Quant)
		return out, nil
	}
	if p.Op == value.OpEq && p.Quant == ast.All {
		return nil, notTransformable("= ALL has no aggregate rewrite")
	}

	item := p.Sub.Select[0]
	if item.IsAggregate() {
		return nil, notTransformable("quantified subquery already aggregates")
	}
	var fn value.AggFunc
	switch {
	case (p.Op == value.OpLt || p.Op == value.OpLe) && p.Quant == ast.Any:
		fn = value.AggMax
	case (p.Op == value.OpGt || p.Op == value.OpGe) && p.Quant == ast.Any:
		fn = value.AggMin
	case (p.Op == value.OpLt || p.Op == value.OpLe) && p.Quant == ast.All:
		fn = value.AggMin
	case (p.Op == value.OpGt || p.Op == value.OpGe) && p.Quant == ast.All:
		fn = value.AggMax
	default:
		return nil, notTransformable("unsupported quantified predicate %s", p.String())
	}
	agg := p.Sub.Clone()
	agg.Select = []ast.SelectItem{{Agg: fn, Col: item.Col}}
	agg.Distinct = false
	out := &ast.Comparison{Left: p.Left, Op: p.Op, Right: &ast.Subquery{Block: agg}}
	t.addStep("EXTEND", "%s %s rewritten to %s against %s", p.Op, p.Quant, p.Op, fn)
	return out, nil
}
