// Package transform implements the paper's query transformation
// algorithms, which rewrite nested SQL queries into canonical (flat) form
// so that a cost-based optimizer can choose join methods instead of being
// forced into nested iteration:
//
//   - NEST-N-J (Kim): merges type-N and type-J nested blocks into the outer
//     block as explicit joins (section 3.1).
//   - NEST-JA (Kim, kept for the bug demonstrations): transforms a type-JA
//     block via a grouped temporary table built from the inner relation
//     alone — unsound for COUNT (section 5.1) and for non-equality
//     correlated operators (section 5.3).
//   - NEST-JA2 (this paper): the corrected algorithm — project the outer
//     join column DISTINCT with the outer block's simple predicates, join
//     it with the (restricted, projected) inner relation — an outer join
//     when the aggregate is COUNT, converting COUNT(*) to COUNT of the
//     inner join column — group by the outer column, and rewrite the
//     original correlated operator to equality (section 6).
//   - The section 8 extensions rewriting EXISTS / NOT EXISTS / ANY / ALL
//     into aggregate or IN predicates.
//   - The recursive, postorder general procedure nest_g of section 9.1,
//     which applies the above to nesting of arbitrary depth and shape.
//
// Transformation works on resolved query trees and never mutates its
// input; the engine keeps the original for nested-iteration execution.
// Queries outside the algorithms' scope (disjunctions over subqueries,
// anti-joins, multi-relation correlation) fail with ErrNotTransformable,
// and the engine falls back to nested iteration.
package transform

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/schema"
	"repro/internal/value"
)

// ErrNotTransformable marks queries the transformation algorithms do not
// cover; callers fall back to nested iteration.
var ErrNotTransformable = errors.New("not transformable")

func notTransformable(format string, args ...any) error {
	return fmt.Errorf("transform: %s: %w", fmt.Sprintf(format, args...), ErrNotTransformable)
}

// Variant selects which type-JA algorithm the transformer applies.
type Variant uint8

const (
	// JA2 is the paper's corrected algorithm NEST-JA2 (the default).
	JA2 Variant = iota
	// KimJA is Kim's original NEST-JA, which exhibits the COUNT bug and
	// the non-equality bug. It exists to reproduce the paper's
	// counterexamples and the experiments that contrast the algorithms.
	KimJA
)

// String names the variant.
func (v Variant) String() string {
	if v == KimJA {
		return "NEST-JA (Kim)"
	}
	return "NEST-JA2"
}

// TempTable is one temporary relation the transformed query depends on.
// Temps are materialized in order before the final query runs; a
// definition may reference earlier temps.
type TempTable struct {
	Name string
	Rel  *schema.Relation
	Def  *ast.QueryBlock
}

// Step records one rule application for EXPLAIN traces, mirroring how the
// paper presents each transformation as SQL text.
type Step struct {
	Rule   string
	Detail string
}

// Result is a completed transformation: the canonical query plus the
// temporary tables it references.
type Result struct {
	Temps []TempTable
	Query *ast.QueryBlock
	Steps []Step
}

// Transformer rewrites nested queries. A Transformer is single-use: create
// one per query.
type Transformer struct {
	cat     *schema.Catalog
	variant Variant

	temps   []TempTable
	tempRel map[string]*schema.Relation // temp name -> schema (overlay over cat)
	steps   []Step
	nAlias  int
	nTemp   int
}

// New creates a transformer over the catalog using the given type-JA
// variant.
func New(cat *schema.Catalog, variant Variant) *Transformer {
	return &Transformer{cat: cat, variant: variant, tempRel: make(map[string]*schema.Relation)}
}

// Transform applies the recursive general procedure (nest_g, section 9.1)
// to a resolved query and returns its canonical form. The input is not
// modified.
func (t *Transformer) Transform(orig *ast.QueryBlock) (*Result, error) {
	qb := orig.Clone()
	if err := t.nestG(qb); err != nil {
		return nil, err
	}
	return &Result{Temps: t.temps, Query: qb, Steps: t.steps}, nil
}

func (t *Transformer) addStep(rule, format string, args ...any) {
	t.steps = append(t.steps, Step{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// lookupRel resolves a relation name against temps first, then the
// catalog.
func (t *Transformer) lookupRel(name string) (*schema.Relation, bool) {
	if r, ok := t.tempRel[strings.ToUpper(name)]; ok {
		return r, true
	}
	return t.cat.Lookup(name)
}

// freshTempName allocates the next TEMPn name that collides with nothing.
func (t *Transformer) freshTempName() string {
	for {
		t.nTemp++
		name := fmt.Sprintf("TEMP%d", t.nTemp)
		if _, ok := t.lookupRel(name); !ok {
			return name
		}
	}
}

// addTemp registers a new temporary table.
func (t *Transformer) addTemp(name string, cols []schema.Column, def *ast.QueryBlock) {
	rel := &schema.Relation{Name: name, Columns: cols}
	t.tempRel[strings.ToUpper(name)] = rel
	t.temps = append(t.temps, TempTable{Name: name, Rel: rel, Def: def})
	t.addStep("CREATE "+name, "%s(%s) = %s", name, columnNames(cols), def.String())
}

func columnNames(cols []schema.Column) string {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return strings.Join(names, ", ")
}

// nestG is the recursive postorder procedure of section 9.1: descend to
// the innermost blocks, then transform on the way back up, so that a
// type-JA block whose correlated join predicate originated levels below
// has already inherited it ("trans-aggregate" predicates) by the time its
// own level is processed.
func (t *Transformer) nestG(qb *ast.QueryBlock) error {
	var out []ast.Predicate
	for _, p := range qb.Where {
		// Subqueries hidden under OR / AND-under-OR / NOT cannot be
		// unnested (the algorithms require conjunctive WHERE clauses);
		// disjunctions over simple predicates are fine and kept as-is.
		switch p.(type) {
		case *ast.OrPred, *ast.NotPred, *ast.AndPred:
			if len(ast.SubqueriesOf(p)) > 0 {
				return notTransformable("subquery under OR/NOT")
			}
			out = append(out, p)
			continue
		}

		p, err := t.rewriteExtended(p)
		if err != nil {
			return err
		}
		p, err = t.normalizeComparison(p)
		if err != nil {
			return err
		}
		sub := ast.SubqueryOf(p)
		if sub == nil {
			out = append(out, p)
			continue
		}
		if err := t.nestG(sub); err != nil {
			return err
		}

		switch kind := classify.Classify(p); kind {
		case classify.TypeA:
			// The inner block is independent and aggregates to a single
			// constant; System R evaluates it once ([SEL 79:33]). The
			// engine replaces it with its value before planning.
			np, err := t.typeAPredicate(p)
			if err != nil {
				return err
			}
			t.addStep("NEST-A", "independent aggregate block evaluates to a constant: %s", np.String())
			out = append(out, np)
		case classify.TypeN, classify.TypeJ:
			conjs, err := t.nestNJ(qb, p, kind)
			if err != nil {
				return err
			}
			out = append(out, conjs...)
		case classify.TypeJA:
			var conjs []ast.Predicate
			var err error
			if t.variant == KimJA {
				conjs, err = t.nestJAKim(qb, p)
			} else {
				conjs, err = t.nestJA2(qb, p)
			}
			if err != nil {
				return err
			}
			out = append(out, conjs...)
		default:
			return notTransformable("unclassifiable nested predicate %s", p.String())
		}
	}
	qb.Where = out
	return nil
}

// normalizeComparison places the subquery operand of a comparison on the
// right-hand side (flipping the operator), the form the algorithms expect.
func (t *Transformer) normalizeComparison(p ast.Predicate) (ast.Predicate, error) {
	cmp, ok := p.(*ast.Comparison)
	if !ok {
		return p, nil
	}
	_, lsub := cmp.Left.(*ast.Subquery)
	_, rsub := cmp.Right.(*ast.Subquery)
	switch {
	case lsub && rsub:
		return nil, notTransformable("comparison between two subqueries")
	case lsub:
		return &ast.Comparison{Left: cmp.Right, Op: cmp.Op.Flip(), Right: cmp.Left}, nil
	default:
		return p, nil
	}
}

// typeAPredicate converts type-A predicates to scalar-comparison form. An
// IN over a single-row aggregate block is equivalent to = (NOT IN to !=).
func (t *Transformer) typeAPredicate(p ast.Predicate) (ast.Predicate, error) {
	switch p := p.(type) {
	case *ast.Comparison:
		return p, nil
	case *ast.InPred:
		op := value.OpEq
		if p.Negated {
			op = value.OpNe
		}
		return &ast.Comparison{Left: p.Left, Op: op, Right: &ast.Subquery{Block: p.Sub}}, nil
	default:
		return nil, notTransformable("unsupported type-A predicate %s", p.String())
	}
}
