package transform

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/value"
)

// jaJoin is one correlated join conjunct of a type-JA inner block,
// normalized so the inner (local) column is on the left: local op outer.
type jaJoin struct {
	local ast.ColumnRef
	op    value.CompareOp
	outer ast.ColumnRef
}

// jaInfo is the analysis of a type-JA nested predicate that both NEST-JA
// variants start from.
type jaInfo struct {
	outerExpr    ast.Expr        // the outer block's comparison operand (Ri.Ch)
	op0          value.CompareOp // the scalar operator against the aggregate
	inner        *ast.QueryBlock // the aggregate block
	agg          ast.SelectItem  // the aggregate select item
	joins        []jaJoin        // correlated join conjuncts
	locals       []ast.Predicate // conjuncts local to the inner block
	outerBinding string          // the single outer binding the joins reference
}

// analyzeJA decomposes a type-JA nested predicate of qb. It rejects (with
// ErrNotTransformable) the shapes outside the paper's algorithm: multiple
// distinct outer relations, non-column join operands, correlation that
// skips the immediately enclosing block, and grouped or DISTINCT inner
// blocks.
func (t *Transformer) analyzeJA(qb *ast.QueryBlock, p ast.Predicate) (*jaInfo, error) {
	info := &jaInfo{}
	switch p := p.(type) {
	case *ast.Comparison:
		sq, ok := p.Right.(*ast.Subquery)
		if !ok {
			return nil, notTransformable("type-JA predicate without right-hand subquery: %s", p.String())
		}
		info.outerExpr, info.op0, info.inner = p.Left, p.Op, sq.Block
	case *ast.InPred:
		// IN over a single-row aggregate block is scalar equality.
		info.outerExpr, info.op0, info.inner = p.Left, value.OpEq, p.Sub
		if p.Negated {
			info.op0 = value.OpNe
		}
	default:
		return nil, notTransformable("unsupported type-JA predicate %s", p.String())
	}
	inner := info.inner
	if len(inner.Select) != 1 || !inner.Select[0].IsAggregate() {
		return nil, notTransformable("type-JA inner block must select a single aggregate")
	}
	if len(inner.GroupBy) > 0 || inner.Distinct {
		return nil, notTransformable("type-JA inner block with GROUP BY or DISTINCT")
	}
	info.agg = inner.Select[0]

	local := make(map[string]bool)
	for _, b := range inner.Bindings() {
		local[strings.ToUpper(b)] = true
	}
	isLocal := func(c ast.ColumnRef) bool { return local[strings.ToUpper(c.Table)] }

	for _, conj := range inner.Where {
		free := conjFreeRefs(conj, local)
		if len(free) == 0 {
			info.locals = append(info.locals, conj)
			continue
		}
		cmp, ok := conj.(*ast.Comparison)
		if !ok {
			return nil, notTransformable("correlated predicate %s is not a scalar comparison", conj.String())
		}
		lc, lok := cmp.Left.(ast.ColumnRef)
		rc, rok := cmp.Right.(ast.ColumnRef)
		if !lok || !rok {
			return nil, notTransformable("correlated join predicate %s must compare two columns", conj.String())
		}
		j := jaJoin{}
		switch {
		case isLocal(lc) && !isLocal(rc):
			j = jaJoin{local: lc, op: cmp.Op, outer: rc}
		case !isLocal(lc) && isLocal(rc):
			j = jaJoin{local: rc, op: cmp.Op.Flip(), outer: lc}
		default:
			return nil, notTransformable("correlated join predicate %s does not relate inner to outer", conj.String())
		}
		if info.outerBinding == "" {
			info.outerBinding = j.outer.Table
		} else if !strings.EqualFold(info.outerBinding, j.outer.Table) {
			return nil, notTransformable("correlation references more than one outer relation (%s and %s)",
				info.outerBinding, j.outer.Table)
		}
		info.joins = append(info.joins, j)
	}
	if len(info.joins) == 0 {
		return nil, notTransformable("type-JA predicate without a correlated join conjunct")
	}

	// The correlation must target the immediately enclosing block: the
	// recursive procedure guarantees this for the paper's query shapes
	// (inherited predicates migrate up one level per NEST-N-J merge).
	found := false
	for _, b := range qb.Bindings() {
		if strings.EqualFold(b, info.outerBinding) {
			found = true
			break
		}
	}
	if !found {
		return nil, notTransformable("correlated reference %s.%s skips the enclosing block",
			info.outerBinding, info.joins[0].outer.Column)
	}

	// The aggregate argument must be a local column (or COUNT(*)).
	if info.agg.Agg != value.AggCountStar && !isLocal(info.agg.Col) {
		return nil, notTransformable("aggregate argument %s is not an inner column", info.agg.Col)
	}
	return info, nil
}

// conjFreeRefs returns the column references in one conjunct (including
// inside any remaining nested blocks) that do not bind to the inner
// block's own FROM clause.
func conjFreeRefs(p ast.Predicate, local map[string]bool) []ast.ColumnRef {
	var free []ast.ColumnRef
	for _, ref := range predRefs(p) {
		if ref.Table != "" && !local[strings.ToUpper(ref.Table)] {
			free = append(free, ref)
		}
	}
	for _, sub := range ast.SubqueriesOf(p) {
		for _, ref := range ast.FreeRefs(sub) {
			if !local[strings.ToUpper(ref.Table)] {
				free = append(free, ref)
			}
		}
	}
	return free
}

// predRefs is the local column reference list of a single predicate.
func predRefs(p ast.Predicate) []ast.ColumnRef {
	holder := &ast.QueryBlock{Where: []ast.Predicate{p}}
	return holder.LocalColumnRefs()
}

// uniqueCols returns refs deduplicated in first-seen order.
func uniqueCols(refs []ast.ColumnRef) []ast.ColumnRef {
	var out []ast.ColumnRef
	seen := make(map[ast.ColumnRef]bool)
	for _, r := range refs {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// colType resolves the type of binding.column against a FROM clause.
func (t *Transformer) colType(c ast.ColumnRef, from []ast.TableRef) (value.Kind, error) {
	for _, tr := range from {
		if strings.EqualFold(tr.Binding(), c.Table) {
			rel, ok := t.lookupRel(tr.Relation)
			if !ok {
				return 0, notTransformable("unknown relation %s", tr.Relation)
			}
			idx := rel.ColumnIndex(c.Column)
			if idx < 0 {
				return 0, notTransformable("relation %s has no column %s", tr.Relation, c.Column)
			}
			return rel.Columns[idx].Type, nil
		}
	}
	return 0, notTransformable("no binding %s in FROM clause", c.Table)
}

// tempColNames assigns a distinct output name to each referenced column,
// preferring the bare column name and qualifying with the binding on
// collision.
func tempColNames(refs []ast.ColumnRef) map[ast.ColumnRef]string {
	names := make(map[ast.ColumnRef]string, len(refs))
	used := make(map[string]bool, len(refs))
	for _, r := range refs {
		name := r.Column
		if used[strings.ToUpper(name)] {
			name = r.Table + "_" + r.Column
		}
		used[strings.ToUpper(name)] = true
		names[r] = name
	}
	return names
}

// aggOutputName names the aggregate column of a temp table in the paper's
// style: CT for COUNT, MAXQUAN-style otherwise.
func aggOutputName(item ast.SelectItem) string {
	if item.Agg.IsCount() {
		return "CT"
	}
	return item.Agg.String() + item.Col.Column
}

// aggResultType computes the stored type of an aggregate column.
func (t *Transformer) aggResultType(item ast.SelectItem, from []ast.TableRef) (value.Kind, error) {
	switch item.Agg {
	case value.AggCount, value.AggCountStar:
		return value.KindInt, nil
	case value.AggAvg:
		return value.KindFloat, nil
	default:
		return t.colType(item.Col, from)
	}
}

// nestJA2 applies the paper's corrected algorithm NEST-JA2 (section 6) to
// one type-JA nested predicate of qb and immediately reduces the resulting
// type-J form to canonical conjuncts (the nest_ja2 + nest_n_j sequence of
// procedure nest_g). It appends the new temporary tables to the
// transformer and the TEMP3 relation to qb's FROM clause, returning the
// replacement conjuncts.
func (t *Transformer) nestJA2(qb *ast.QueryBlock, p ast.Predicate) ([]ast.Predicate, error) {
	info, err := t.analyzeJA(qb, p)
	if err != nil {
		return nil, err
	}
	isCount := info.agg.Agg.IsCount()

	// ---- Step 1: project the join column(s) of the outer relation,
	// DISTINCT, restricted by the outer block's simple predicates
	// (sections 5.4.1 and 6, step 1).
	var outerTR ast.TableRef
	for _, tr := range qb.From {
		if strings.EqualFold(tr.Binding(), info.outerBinding) {
			outerTR = tr
			break
		}
	}
	var outerCols []ast.ColumnRef
	for _, j := range info.joins {
		outerCols = append(outerCols, j.outer)
	}
	outerCols = uniqueCols(outerCols)

	var outerSimple []ast.Predicate
	for _, conj := range qb.Where {
		if conj == p {
			continue
		}
		cmp, ok := conj.(*ast.Comparison)
		if !ok || len(ast.SubqueriesOf(cmp)) > 0 {
			continue
		}
		onOuter := true
		for _, ref := range predRefs(cmp) {
			if !strings.EqualFold(ref.Table, info.outerBinding) {
				onOuter = false
				break
			}
		}
		if onOuter {
			outerSimple = append(outerSimple, ast.ClonePredicate(conj))
		}
	}

	temp1 := t.freshTempName()
	def1 := &ast.QueryBlock{Distinct: true, From: []ast.TableRef{outerTR}, Where: outerSimple}
	cols1 := make([]schema.Column, len(outerCols))
	for i, c := range outerCols {
		def1.Select = append(def1.Select, ast.SelectItem{Col: c})
		typ, err := t.colType(c, qb.From)
		if err != nil {
			return nil, err
		}
		cols1[i] = schema.Column{Name: c.Column, Type: typ}
	}
	t.addTemp(temp1, cols1, def1)

	aggName := aggOutputName(info.agg)
	aggType, err := t.aggResultType(info.agg, info.inner.From)
	if err != nil {
		return nil, err
	}

	def3 := &ast.QueryBlock{}
	var cols3 []schema.Column
	for i, c := range outerCols {
		def3.Select = append(def3.Select, ast.SelectItem{Col: ast.ColumnRef{Table: temp1, Column: c.Column}})
		def3.GroupBy = append(def3.GroupBy, ast.ColumnRef{Table: temp1, Column: c.Column})
		cols3 = append(cols3, cols1[i])
	}
	cols3 = append(cols3, schema.Column{Name: aggName, Type: aggType})

	if isCount {
		// ---- Step 2 (COUNT only): restrict and project the inner
		// relation *before* the join (section 5.2: applying the simple
		// predicate after the outer join would wrongly keep padded
		// rows).
		aggCol := info.agg.Col
		if info.agg.Agg == value.AggCountStar {
			// Section 5.2.1: COUNT(*) must become COUNT over the inner
			// join column, which is non-NULL exactly when a real match
			// exists.
			aggCol = info.joins[0].local
			t.addStep("NEST-JA2", "COUNT(*) converted to COUNT(%s), the inner join column", aggCol)
		}
		var innerCols []ast.ColumnRef
		for _, j := range info.joins {
			innerCols = append(innerCols, j.local)
		}
		innerCols = append(innerCols, aggCol)
		innerCols = uniqueCols(innerCols)
		names2 := tempColNames(innerCols)

		temp2 := t.freshTempName()
		def2 := &ast.QueryBlock{From: info.inner.From, Where: info.locals}
		var cols2 []schema.Column
		for _, c := range innerCols {
			item := ast.SelectItem{Col: c}
			if names2[c] != c.Column {
				item.As = names2[c]
			}
			def2.Select = append(def2.Select, item)
			typ, err := t.colType(c, info.inner.From)
			if err != nil {
				return nil, err
			}
			cols2 = append(cols2, schema.Column{Name: names2[c], Type: typ})
		}
		t.addTemp(temp2, cols2, def2)

		// ---- Step 3 (COUNT): outer join TEMP1 with TEMP2, preserving
		// TEMP1's groups, using the original correlated operator; COUNT
		// over the inner column yields 0 for unmatched groups.
		def3.From = []ast.TableRef{{Relation: temp1}, {Relation: temp2}}
		for _, j := range info.joins {
			def3.Where = append(def3.Where, &ast.Comparison{
				Left:      ast.ColumnRef{Table: temp1, Column: j.outer.Column},
				Op:        j.op.Flip(),
				Right:     ast.ColumnRef{Table: temp2, Column: names2[j.local]},
				LeftOuter: true,
			})
		}
		def3.Select = append(def3.Select, ast.SelectItem{
			Agg: value.AggCount,
			Col: ast.ColumnRef{Table: temp2, Column: names2[aggCol]},
			As:  aggName,
		})
	} else {
		// ---- Step 3 (non-COUNT): a regular join of TEMP1 with the
		// inner relation suffices (section 5.3.1); the join carries the
		// original operator so the temp table aggregates over the proper
		// *range* of join-column values.
		for _, tr := range info.inner.From {
			if strings.EqualFold(tr.Binding(), temp1) {
				return nil, notTransformable("inner binding %s collides with generated temp name", tr.Binding())
			}
		}
		innerFrom := append([]ast.TableRef(nil), info.inner.From...)
		def3.From = append([]ast.TableRef{{Relation: temp1}}, innerFrom...)
		for _, lp := range info.locals {
			def3.Where = append(def3.Where, ast.ClonePredicate(lp))
		}
		for _, j := range info.joins {
			def3.Where = append(def3.Where, &ast.Comparison{
				Left:  ast.ColumnRef{Table: temp1, Column: j.outer.Column},
				Op:    j.op.Flip(),
				Right: j.local,
			})
		}
		def3.Select = append(def3.Select, ast.SelectItem{
			Agg: info.agg.Agg,
			Col: info.agg.Col,
			As:  aggName,
		})
	}
	temp3 := t.freshTempName()
	t.addTemp(temp3, cols3, def3)

	// ---- Step 4: the nested predicate becomes scalar against TEMP3's
	// aggregate column, and the correlated join predicates become
	// equality joins with TEMP3 ("the join predicate in the original
	// query must be changed to =").
	for _, tr := range qb.From {
		if strings.EqualFold(tr.Binding(), temp3) {
			return nil, notTransformable("outer binding %s collides with generated temp name", tr.Binding())
		}
	}
	conjs := []ast.Predicate{&ast.Comparison{
		Left:  info.outerExpr,
		Op:    info.op0,
		Right: ast.ColumnRef{Table: temp3, Column: aggName},
	}}
	for _, c := range outerCols {
		// The back-join must be NULL-safe: in the COUNT path TEMP3 holds a
		// CT=0 group for NULL-keyed outer rows (nested iteration counts an
		// empty set for them), and a plain = would drop that group — the
		// original COUNT bug resurfacing one join later. In the non-COUNT
		// path TEMP3 has no NULL group keys (step 3's regular join drops
		// them), so <=> coincides with = there.
		conjs = append(conjs, &ast.Comparison{
			Left:  ast.ColumnRef{Table: temp3, Column: c.Column},
			Op:    value.OpEqNull,
			Right: c,
		})
	}
	qb.From = append(qb.From, ast.TableRef{Relation: temp3})
	t.addStep("NEST-JA2", "type-JA predicate reduced to joins with %s: %s", temp3, predsString(conjs))
	return conjs, nil
}

func predsString(ps []ast.Predicate) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, " AND ")
}
