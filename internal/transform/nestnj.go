package transform

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/value"
)

// nestNJ applies Kim's algorithm NEST-N-J (section 3.1) to one type-N or
// type-J nested predicate of qb:
//
//  1. Combine the FROM clauses of the two blocks into one (aliasing merged
//     tables whose binding collides with one already present).
//  2. AND the inner block's WHERE conjuncts into the outer's, replacing
//     IS IN by =.
//  3. Retain the outer SELECT clause.
//
// It returns the conjuncts that replace the nested predicate, having
// already appended the inner FROM entries to qb.
//
// Known scope note, inherited from Kim's Lemma 1: the join form can
// duplicate outer tuples when the inner column is not unique per match;
// the lemma (and this reproduction) treat the query result as a set.
func (t *Transformer) nestNJ(qb *ast.QueryBlock, p ast.Predicate, kind classify.NestType) ([]ast.Predicate, error) {
	var left ast.Expr
	var op value.CompareOp
	var sub *ast.QueryBlock
	switch p := p.(type) {
	case *ast.InPred:
		if p.Negated {
			// Extension beyond the paper: a flat NOT IN is retained in
			// the canonical form and executed by the planner as a
			// NULL-aware anti-join; anything fancier falls back.
			if p.Sub.HasNestedPredicate() || p.Sub.Distinct ||
				p.Sub.HasAggregate() || len(p.Sub.GroupBy) > 0 || p.Sub.HasDisjunction() {
				return nil, notTransformable("NOT IN over a non-flat inner block")
			}
			t.addStep("EXTENSION", "NOT IN retained for NULL-aware anti-join execution: %s", p.String())
			return []ast.Predicate{p}, nil
		}
		left, op, sub = p.Left, value.OpEq, p.Sub
	case *ast.Comparison:
		sq, ok := p.Right.(*ast.Subquery)
		if !ok {
			return nil, notTransformable("nested comparison without right-hand subquery: %s", p.String())
		}
		left, op, sub = p.Left, p.Op, sq.Block
	default:
		return nil, notTransformable("unsupported nested predicate %s", p.String())
	}
	if sub.Distinct {
		return nil, notTransformable("DISTINCT inner block cannot be merged as a join")
	}
	if len(sub.GroupBy) > 0 || sub.HasAggregate() {
		return nil, notTransformable("aggregate inner block reached NEST-N-J")
	}
	// Kim's Lemma 1 equates the nested predicate with a join as *sets*:
	// the join repeats an outer tuple once per matching inner tuple. That
	// is harmless for a query result treated as a set and for MAX/MIN,
	// but it corrupts COUNT/SUM/AVG when the enclosing block aggregates
	// over the merged rows — unless the merged column is a declared key
	// (at most one match per value) the merge must be refused and the
	// query falls back to nested iteration.
	if multiplicitySensitive(qb) && !t.uniqueSelectColumn(sub) {
		return nil, notTransformable(
			"merging %s under COUNT/SUM/AVG can change row multiplicity", p.String())
	}

	// Step 1: merge FROM clauses, renaming colliding bindings.
	taken := make(map[string]bool)
	for _, tr := range qb.From {
		taken[strings.ToUpper(tr.Binding())] = true
	}
	for i := range sub.From {
		tr := sub.From[i]
		if taken[strings.ToUpper(tr.Binding())] {
			old := tr.Binding()
			alias := t.freshAlias(old, taken)
			sub.From[i].Alias = alias
			renameBinding(sub, old, alias)
			t.addStep("NEST-N-J", "alias %s as %s to merge FROM clauses", old, alias)
		}
		taken[strings.ToUpper(sub.From[i].Binding())] = true
	}
	// renameBinding has already rewritten the select column if needed.
	selCol := sub.Select[0].Col
	qb.From = append(qb.From, sub.From...)

	// Step 2: the nested predicate becomes an explicit join predicate,
	// ANDed with the inner WHERE clause.
	join := &ast.Comparison{Left: left, Op: op, Right: selCol}
	conjs := append([]ast.Predicate{join}, sub.Where...)
	t.addStep("NEST-N-J", "%s predicate becomes join: %s", kind, join.String())
	return conjs, nil
}

// multiplicitySensitive reports whether the block computes an aggregate
// whose value changes if input rows are duplicated (COUNT, SUM, AVG —
// MAX and MIN are duplicate-insensitive).
func multiplicitySensitive(qb *ast.QueryBlock) bool {
	for _, s := range qb.Select {
		switch s.Agg {
		case value.AggCount, value.AggCountStar, value.AggSum, value.AggAvg:
			return true
		}
	}
	return false
}

// uniqueSelectColumn reports whether the inner block's selected column is
// the declared key of its single relation, guaranteeing at most one match
// per outer value and therefore a multiplicity-safe merge.
func (t *Transformer) uniqueSelectColumn(sub *ast.QueryBlock) bool {
	if len(sub.From) != 1 || len(sub.Select) != 1 {
		return false
	}
	rel, ok := t.lookupRel(sub.From[0].Relation)
	if !ok {
		return false
	}
	col := sub.Select[0].Col
	return strings.EqualFold(col.Table, sub.From[0].Binding()) && rel.IsKey(col.Column)
}

// freshAlias generates an alias not yet taken, derived from the base name.
func (t *Transformer) freshAlias(base string, taken map[string]bool) string {
	for {
		t.nAlias++
		alias := base + "_" + itoa(t.nAlias)
		if !taken[strings.ToUpper(alias)] {
			return alias
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// renameBinding rewrites references Table==old to Table==new throughout
// the block subtree, stopping at any descendant block whose own FROM
// clause re-binds the old name (shadowing).
func renameBinding(qb *ast.QueryBlock, old, new string) {
	qb.RewriteLocalColumns(func(c ast.ColumnRef) ast.ColumnRef {
		if strings.EqualFold(c.Table, old) {
			c.Table = new
		}
		return c
	})
	for _, p := range qb.Where {
		for _, sub := range ast.SubqueriesOf(p) {
			shadowed := false
			for _, tr := range sub.From {
				if strings.EqualFold(tr.Binding(), old) {
					shadowed = true
					break
				}
			}
			if !shadowed {
				renameBinding(sub, old, new)
			}
		}
	}
}
