package transform

import (
	"strings"

	"repro/internal/ast"
	"repro/internal/schema"
)

// nestJAKim applies Kim's original algorithm NEST-JA (section 3.2) to one
// type-JA nested predicate of qb, immediately followed by NEST-N-J. It is
// retained — selectable via the KimJA variant — to reproduce the paper's
// counterexamples:
//
//   - The COUNT bug (section 5.1): the grouped temporary table is built
//     from the inner relation alone, so groups with no qualifying inner
//     tuples simply do not exist and COUNT can never be 0; outer tuples
//     whose correlated count is zero are lost.
//   - The non-equality bug (section 5.3): the temp table groups by the
//     inner join-column value, but a predicate like SUPPLY.PNUM <
//     PARTS.PNUM needs the aggregate over a *range* of join-column values
//     per outer tuple.
//   - The duplicates hazard does not arise here because the outer relation
//     never participates in temp creation; it arises in naive corrections
//     (section 5.4 tests it against the fixed algorithm's step 1).
func (t *Transformer) nestJAKim(qb *ast.QueryBlock, p ast.Predicate) ([]ast.Predicate, error) {
	info, err := t.analyzeJA(qb, p)
	if err != nil {
		return nil, err
	}

	var localCols []ast.ColumnRef
	for _, j := range info.joins {
		localCols = append(localCols, j.local)
	}
	localCols = uniqueCols(localCols)
	names := tempColNames(localCols)

	aggName := aggOutputName(info.agg)
	aggType, err := t.aggResultType(info.agg, info.inner.From)
	if err != nil {
		return nil, err
	}

	// Rt(C1..Cn, Cn+1) = SELECT join cols, AGG(Cm) FROM R2
	//                    WHERE <simple predicates> GROUP BY join cols.
	temp := t.freshTempName()
	def := &ast.QueryBlock{From: info.inner.From, Where: info.locals}
	var cols []schema.Column
	for _, c := range localCols {
		item := ast.SelectItem{Col: c}
		if names[c] != c.Column {
			item.As = names[c]
		}
		def.Select = append(def.Select, item)
		def.GroupBy = append(def.GroupBy, c)
		typ, err := t.colType(c, info.inner.From)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: names[c], Type: typ})
	}
	def.Select = append(def.Select, ast.SelectItem{Agg: info.agg.Agg, Col: info.agg.Col, As: aggName})
	cols = append(cols, schema.Column{Name: aggName, Type: aggType})
	t.addTemp(temp, cols, def)

	// The inner block becomes a reference to Rt (type-J), then NEST-N-J
	// merges it: join predicates keep their original operators — which is
	// exactly the section 5.3 bug when an operator is not equality.
	for _, tr := range qb.From {
		if strings.EqualFold(tr.Binding(), temp) {
			return nil, notTransformable("outer binding %s collides with generated temp name", tr.Binding())
		}
	}
	conjs := []ast.Predicate{&ast.Comparison{
		Left:  info.outerExpr,
		Op:    info.op0,
		Right: ast.ColumnRef{Table: temp, Column: aggName},
	}}
	for _, j := range info.joins {
		conjs = append(conjs, &ast.Comparison{
			Left:  ast.ColumnRef{Table: temp, Column: names[j.local]},
			Op:    j.op,
			Right: j.outer,
		})
	}
	qb.From = append(qb.From, ast.TableRef{Relation: temp})
	t.addStep("NEST-JA", "type-JA predicate reduced to joins with %s: %s", temp, predsString(conjs))
	return conjs, nil
}
