package stats_test

import (
	"math"
	"testing"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

func analyzed(t *testing.T) (*stats.Stats, *workload.DB) {
	t.Helper()
	db := workload.NewDB(8)
	if err := workload.LoadSuppliers(db); err != nil {
		t.Fatal(err)
	}
	st := stats.New()
	if err := st.Analyze(db.Cat, db.Store); err != nil {
		t.Fatal(err)
	}
	return st, db
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAnalyzeCounts(t *testing.T) {
	st, _ := analyzed(t)
	s := st.Relation("S")
	if s == nil {
		t.Fatal("no stats for S")
	}
	if s.Tuples != 5 {
		t.Errorf("S tuples = %d", s.Tuples)
	}
	// SNO has 5 distinct values, CITY has 3, STATUS has 3.
	if s.Distinct["SNO"] != 5 || s.Distinct["CITY"] != 3 || s.Distinct["STATUS"] != 3 {
		t.Errorf("S distinct = %v", s.Distinct)
	}
	if st.Relation("NOPE") != nil {
		t.Error("stats for unknown relation")
	}
}

func TestAnalyzeDistinctWithNulls(t *testing.T) {
	db := workload.NewDB(8)
	st := stats.New()
	// NULLs group as one distinct value (they key identically).
	rel := relWithNulls(t, db)
	f, _ := db.Store.Lookup(rel)
	r, _ := db.Cat.Lookup(rel)
	st.AnalyzeRelation(r, f)
	if got := st.Relation(rel).Distinct["X"]; got != 3 { // 1, 2, NULL
		t.Errorf("distinct with NULLs = %d, want 3", got)
	}
}

func relWithNulls(t *testing.T, db *workload.DB) string {
	t.Helper()
	rel := &schema.Relation{Name: "N", Columns: []schema.Column{{Name: "X", Type: value.KindInt}}}
	rows := []storage.Tuple{{value.NewInt(1)}, {value.NewInt(2)}, {value.Null}, {value.Null}}
	if err := db.Load(rel, 0, rows); err != nil {
		t.Fatal(err)
	}
	return "N"
}

func TestSelectivityFactors(t *testing.T) {
	st, _ := analyzed(t)
	from := []ast.TableRef{{Relation: "S"}}
	city := ast.ColumnRef{Table: "S", Column: "CITY"}
	sno := ast.ColumnRef{Table: "S", Column: "SNO"}
	cst := ast.Const{Val: value.NewString("Paris")}

	cases := []struct {
		p    ast.Predicate
		want float64
	}{
		// col = const: 1/distinct.
		{&ast.Comparison{Left: city, Op: value.OpEq, Right: cst}, 1.0 / 3},
		{&ast.Comparison{Left: cst, Op: value.OpEq, Right: city}, 1.0 / 3},
		// col = col: 1/max(d1, d2).
		{&ast.Comparison{Left: city, Op: value.OpEq, Right: sno}, 1.0 / 5},
		// col != const.
		{&ast.Comparison{Left: city, Op: value.OpNe, Right: cst}, 2.0 / 3},
		// range.
		{&ast.Comparison{Left: sno, Op: value.OpLt, Right: cst}, 1.0 / 3},
		// const only.
		{&ast.Comparison{Left: cst, Op: value.OpEq, Right: cst}, 1.0 / 10},
	}
	for _, c := range cases {
		if got := st.Selectivity(c.p, from); !almost(got, c.want) {
			t.Errorf("Selectivity(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSelectivityCombinators(t *testing.T) {
	st, _ := analyzed(t)
	from := []ast.TableRef{{Relation: "S"}}
	city := ast.ColumnRef{Table: "S", Column: "CITY"}
	eq := &ast.Comparison{Left: city, Op: value.OpEq, Right: ast.Const{Val: value.NewString("x")}}

	and := &ast.AndPred{Left: eq, Right: eq}
	if got := st.Selectivity(and, from); !almost(got, 1.0/9) {
		t.Errorf("AND = %v", got)
	}
	or := &ast.OrPred{Left: eq, Right: eq}
	if got := st.Selectivity(or, from); !almost(got, 1.0/3+1.0/3-1.0/9) {
		t.Errorf("OR = %v", got)
	}
	not := &ast.NotPred{P: eq}
	if got := st.Selectivity(not, from); !almost(got, 2.0/3) {
		t.Errorf("NOT = %v", got)
	}
	// Unknown shape: neutral 1/3.
	in := &ast.InPred{Left: city, Sub: &ast.QueryBlock{}}
	if got := st.Selectivity(in, from); !almost(got, 1.0/3) {
		t.Errorf("IN = %v", got)
	}
}

func TestDistinctValuesFallback(t *testing.T) {
	st := stats.New()
	ref := ast.ColumnRef{Table: "T", Column: "X"}
	if got := st.DistinctValues(ref, []ast.TableRef{{Relation: "T"}}); got != 10 {
		t.Errorf("fallback distinct = %d, want 10", got)
	}
}

func TestJoinCardinality(t *testing.T) {
	if got := stats.JoinCardinality(100, 200, 50, 20); got != 100*200/50 {
		t.Errorf("JoinCardinality = %v", got)
	}
	if got := stats.JoinCardinality(10, 10, 0, 0); got != 100 {
		t.Errorf("JoinCardinality with zero distinct = %v", got)
	}
}
