// Package stats implements System R-style relation statistics and
// selectivity estimation ([SEL 79], the optimizer the paper defers
// transformed queries to). ANALYZE scans each relation once and records
// page and tuple counts plus the number of distinct values per column;
// predicates are then assigned the classic selectivity factors:
//
//	col = const    1 / distinct(col)
//	col = col      1 / max(distinct(left), distinct(right))
//	col < const    1/3       (range without value distribution)
//	col != const   1 - 1/distinct(col)
//	OR             s1 + s2 − s1·s2
//	AND            s1 · s2
//	NOT            1 − s
//
// The planner multiplies these into its cardinality estimates when
// choosing between merge and nested-loops joins.
package stats

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/value"
)

// defaultDistinct is assumed for columns without statistics, as System R
// did for unindexed columns.
const defaultDistinct = 10

// RelationStats holds the statistics of one relation.
type RelationStats struct {
	Pages    int
	Tuples   int
	Distinct map[string]int // upper-cased column name -> distinct values
}

// Stats is the statistics catalog.
type Stats struct {
	rels map[string]*RelationStats // upper-cased relation name
}

// New returns an empty statistics catalog.
func New() *Stats {
	return &Stats{rels: make(map[string]*RelationStats)}
}

// Analyze scans every stored relation in the catalog and records its
// statistics. The scan's page reads are charged like any other access;
// run ANALYZE outside measured query windows.
func (s *Stats) Analyze(cat *schema.Catalog, store *storage.Store) error {
	for _, name := range cat.Names() {
		rel, _ := cat.Lookup(name)
		f, ok := store.Lookup(rel.Name)
		if !ok {
			return fmt.Errorf("stats: relation %s has no storage", name)
		}
		s.AnalyzeRelation(rel, f)
	}
	return nil
}

// AnalyzeRelation computes statistics for one relation.
func (s *Stats) AnalyzeRelation(rel *schema.Relation, f *storage.HeapFile) {
	rs := &RelationStats{
		Pages:    f.NumPages(),
		Tuples:   f.NumTuples(),
		Distinct: make(map[string]int, len(rel.Columns)),
	}
	seen := make([]map[string]bool, len(rel.Columns))
	for i := range seen {
		seen[i] = make(map[string]bool)
	}
	f.Scan(func(t storage.Tuple) bool {
		for i, v := range t {
			seen[i][v.String()] = true
		}
		return true
	})
	for i, c := range rel.Columns {
		rs.Distinct[strings.ToUpper(c.Name)] = len(seen[i])
	}
	s.rels[strings.ToUpper(rel.Name)] = rs
}

// Relation returns the statistics for a relation, or nil when none exist.
func (s *Stats) Relation(name string) *RelationStats {
	return s.rels[strings.ToUpper(name)]
}

// DistinctValues returns the distinct-value count of binding.column given
// a FROM clause mapping bindings to relations, falling back to the System
// R default when unknown.
func (s *Stats) DistinctValues(ref ast.ColumnRef, from []ast.TableRef) int {
	for _, tr := range from {
		if strings.EqualFold(tr.Binding(), ref.Table) {
			if rs := s.Relation(tr.Relation); rs != nil {
				if d, ok := rs.Distinct[strings.ToUpper(ref.Column)]; ok && d > 0 {
					return d
				}
			}
		}
	}
	return defaultDistinct
}

// Selectivity estimates the fraction of rows satisfying the predicate
// over the given FROM clause. Unknown shapes get the neutral factor 1/3.
func (s *Stats) Selectivity(p ast.Predicate, from []ast.TableRef) float64 {
	switch p := p.(type) {
	case *ast.Comparison:
		return s.comparisonSelectivity(p, from)
	case *ast.OrPred:
		a, b := s.Selectivity(p.Left, from), s.Selectivity(p.Right, from)
		return a + b - a*b
	case *ast.AndPred:
		return s.Selectivity(p.Left, from) * s.Selectivity(p.Right, from)
	case *ast.NotPred:
		return 1 - s.Selectivity(p.P, from)
	default:
		return 1.0 / 3
	}
}

func (s *Stats) comparisonSelectivity(p *ast.Comparison, from []ast.TableRef) float64 {
	lc, lok := p.Left.(ast.ColumnRef)
	rc, rok := p.Right.(ast.ColumnRef)
	switch p.Op {
	case value.OpEq:
		switch {
		case lok && rok:
			dl, dr := s.DistinctValues(lc, from), s.DistinctValues(rc, from)
			return 1 / float64(max(dl, dr))
		case lok:
			return 1 / float64(s.DistinctValues(lc, from))
		case rok:
			return 1 / float64(s.DistinctValues(rc, from))
		default:
			return 1.0 / 10
		}
	case value.OpNe:
		switch {
		case lok:
			return 1 - 1/float64(s.DistinctValues(lc, from))
		case rok:
			return 1 - 1/float64(s.DistinctValues(rc, from))
		default:
			return 9.0 / 10
		}
	default: // range predicates
		return 1.0 / 3
	}
}

// JoinCardinality estimates the output size of an equality join between
// inputs of nl and nr tuples on columns with the given distinct counts:
// nl·nr / max(dl, dr).
func JoinCardinality(nl, nr float64, dl, dr int) float64 {
	d := max(dl, dr)
	if d < 1 {
		d = 1
	}
	return nl * nr / float64(d)
}
