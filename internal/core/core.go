// Package core exposes the paper's primary contribution as a single
// surface: classification of nested predicates (Kim's type-A / N / J / JA
// taxonomy), the recursive general transformation procedure nest_g with
// the corrected NEST-JA2 algorithm, and the buggy Kim NEST-JA variant
// retained for the paper's counterexample experiments.
//
// The surrounding substrates — parser, catalog, paged storage, physical
// operators, cost model, planner — live in their own packages; core wires
// the transformation entry points the engine and the public API build on.
package core

import (
	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/schema"
	"repro/internal/transform"
)

// Unnest applies the paper's recursive transformation (procedure nest_g of
// section 9.1, with NEST-N-J and the corrected NEST-JA2) to a resolved
// query block tree, returning the canonical form and its temporary-table
// program. The input is not modified. Queries outside the algorithms'
// scope return an error wrapping transform.ErrNotTransformable.
func Unnest(cat *schema.Catalog, qb *ast.QueryBlock) (*transform.Result, error) {
	return transform.New(cat, transform.JA2).Transform(qb)
}

// UnnestKim applies the same pipeline with Kim's original NEST-JA, which
// exhibits the COUNT bug (section 5.1) and the non-equality bug (section
// 5.3). It exists so the engine and experiments can reproduce the paper's
// counterexamples side by side with the fix.
func UnnestKim(cat *schema.Catalog, qb *ast.QueryBlock) (*transform.Result, error) {
	return transform.New(cat, transform.KimJA).Transform(qb)
}

// ClassifyPredicate reports the nesting type of a single predicate in a
// resolved query (Kim's taxonomy, section 2 of the paper).
func ClassifyPredicate(p ast.Predicate) classify.NestType {
	return classify.Classify(p)
}

// ProfileQuery summarizes the nesting structure of a resolved query.
func ProfileQuery(qb *ast.QueryBlock) classify.QueryProfile {
	return classify.Profile(qb)
}
