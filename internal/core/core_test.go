package core_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/sqlparser"
	"repro/internal/transform"
	"repro/internal/workload"
)

func resolved(t *testing.T, src string) (*workload.DB, *ast.QueryBlock) {
	t.Helper()
	db := workload.NewDB(8)
	if err := workload.LoadKiessling(db); err != nil {
		t.Fatal(err)
	}
	qb := sqlparser.MustParse(src)
	if _, err := schema.Resolve(db.Cat, qb); err != nil {
		t.Fatal(err)
	}
	return db, qb
}

func TestUnnestAppliesJA2(t *testing.T) {
	db, qb := resolved(t, workload.KiesslingQ2)
	res, err := core.Unnest(db.Cat, qb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Temps) != 3 {
		t.Errorf("temps = %d, want 3", len(res.Temps))
	}
	if !strings.Contains(res.Temps[2].Def.String(), "=+") {
		t.Errorf("outer join missing: %s", res.Temps[2].Def)
	}
}

func TestUnnestKimReproducesBuggyForm(t *testing.T) {
	db, qb := resolved(t, workload.KiesslingQ2)
	res, err := core.UnnestKim(db.Cat, qb)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Temps) != 1 {
		t.Errorf("temps = %d, want 1", len(res.Temps))
	}
	if strings.Contains(res.Temps[0].Def.String(), "=+") {
		t.Errorf("Kim's temp must not use an outer join: %s", res.Temps[0].Def)
	}
}

func TestUnnestErrorWraps(t *testing.T) {
	db, qb := resolved(t,
		"SELECT PNUM FROM PARTS WHERE QOH > 9 OR PNUM IN (SELECT PNUM FROM SUPPLY)")
	_, err := core.Unnest(db.Cat, qb)
	if !errors.Is(err, transform.ErrNotTransformable) {
		t.Errorf("err = %v", err)
	}
}

func TestClassifyAndProfile(t *testing.T) {
	_, qb := resolved(t, workload.KiesslingQ2)
	if got := core.ClassifyPredicate(qb.Where[0]); got != classify.TypeJA {
		t.Errorf("classify = %v", got)
	}
	prof := core.ProfileQuery(qb)
	if prof.Blocks != 2 || prof.MaxDepth != 1 {
		t.Errorf("profile = %+v", prof)
	}
}
