// Generalnesting demonstrates the recursive procedure nest_g of section
// 9.1 on queries of arbitrary nesting shape: a three-level query whose
// innermost block references the outermost relation (the Figure 2
// situation), and a query mixing several nesting types in one WHERE
// clause. EXPLAIN shows the postorder transformation trace.
package main

import (
	"fmt"
	"log"

	nestedsql "repro"
)

func main() {
	db := nestedsql.Open(nestedsql.WithBufferPages(8))
	if err := db.LoadFixture(nestedsql.FixtureSuppliers); err != nil {
		log.Fatal(err)
	}

	// The Figure 2 situation: block C (over P) references block A's
	// relation S, crossing the aggregate block B (over SP). nest_g merges
	// C into B first (NEST-N-J), B inherits the "trans-aggregate" join
	// predicate, and the now-visible type-JA nesting is resolved by
	// NEST-JA2.
	deep := `
		SELECT SNAME FROM S
		WHERE STATUS < (SELECT MAX(QTY) FROM SP
		                WHERE PNO IN (SELECT PNO FROM P
		                              WHERE P.CITY = S.CITY))`
	rep, err := db.Explain(deep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== three-level query crossing the aggregate block ===")
	fmt.Println(rep)

	// Several nesting types in one WHERE clause: a type-N membership, a
	// type-A constant, and a correlated type-JA aggregate, all handled in
	// a single pass.
	mixed := `
		SELECT SNAME FROM S
		WHERE SNO IN (SELECT SNO FROM SP WHERE QTY > 100) AND
		      STATUS <= (SELECT MAX(STATUS) FROM S) AND
		      STATUS < (SELECT MIN(QTY) FROM SP WHERE SP.SNO = S.SNO)`
	rep, err = db.Explain(mixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== mixed nesting types in one WHERE clause ===")
	fmt.Println(rep)

	// Results agree with the nested-iteration ground truth (as sets; the
	// canonical join form may repeat outer tuples, see README).
	for _, q := range []string{deep, mixed} {
		ni, err := db.Query(q, nestedsql.WithStrategy(nestedsql.StrategyNestedIteration))
		if err != nil {
			log.Fatal(err)
		}
		tr, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agreement (distinct rows): %v vs %v\n",
			distinct(ni.Rows), distinct(tr.Rows))
	}
}

func distinct(rows [][]any) []any {
	seen := map[any]bool{}
	var out []any
	for _, r := range rows {
		if !seen[r[0]] {
			seen[r[0]] = true
			out = append(out, r[0])
		}
	}
	return out
}
