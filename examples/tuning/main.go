// Tuning shows the System R-era physical design workflow around the
// paper's transformations: bulk-load from CSV, collect statistics
// (ANALYZE), build a secondary index, watch the planner switch to an
// index scan for a selective restriction, and snapshot the tuned database
// to disk.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	nestedsql "repro"
)

func main() {
	db := nestedsql.Open(nestedsql.WithBufferPages(8))
	if err := db.CreateTable("ORDERS", []nestedsql.Column{
		{Name: "ID", Type: nestedsql.Int},
		{Name: "CUST", Type: nestedsql.Int},
		{Name: "TOTAL", Type: nestedsql.Float},
		{Name: "PLACED", Type: nestedsql.Date},
	}, 5, "ID"); err != nil {
		log.Fatal(err)
	}

	// Bulk-load synthetic orders via the CSV path.
	var csv strings.Builder
	csv.WriteString("id,cust,total,placed\n")
	for i := range 600 {
		fmt.Fprintf(&csv, "%d,%d,%d.50,%d-%d-8%d\n",
			i, i%120, (i*7)%90, i%12+1, i%28+1, i%10)
	}
	n, err := db.LoadCSV("ORDERS", strings.NewReader(csv.String()), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d orders (%d pages)\n\n", n, 600/5)

	const q = "SELECT ID, TOTAL FROM ORDERS WHERE CUST = 17 ORDER BY ID"

	before, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selective lookup before tuning: %d rows, %s\n", len(before.Rows), before.PageIO)

	// ANALYZE gives the planner selectivity estimates; the index gives it
	// a selective access path.
	if err := db.Analyze(); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateIndex("ORDERS", "CUST"); err != nil {
		log.Fatal(err)
	}
	after, err := db.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after ANALYZE + index on CUST:   %d rows, %s\n", len(after.Rows), after.PageIO)
	for _, line := range after.Trace {
		if strings.Contains(line, "index scan") {
			fmt.Println("  plan:", line)
		}
	}

	// Snapshot the whole database; Restore rebuilds it elsewhere.
	f, err := os.CreateTemp("", "orders-*.db")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	if err := db.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("\nsnapshot written to %s\n", f.Name())

	g, err := os.Open(f.Name())
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	restored, err := nestedsql.Restore(g)
	if err != nil {
		log.Fatal(err)
	}
	res, err := restored.Query("SELECT COUNT(*) FROM ORDERS")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored database has %v orders\n", res.Rows[0][0])
}
