// Quickstart: create tables, insert rows, and run a nested query under
// all three strategies, comparing results and measured page I/Os.
package main

import (
	"fmt"
	"log"

	nestedsql "repro"
)

func main() {
	db := nestedsql.Open(nestedsql.WithBufferPages(8))

	// The suppliers-and-parts database of the paper's introduction.
	if err := db.LoadFixture(nestedsql.FixtureSuppliers); err != nil {
		log.Fatal(err)
	}

	// Example 5 of the paper: "names of parts which have the highest part
	// number in the city from which they are supplied" — a type-JA nested
	// query (correlated aggregate).
	const query = `
		SELECT PNAME FROM P
		WHERE PNO = (SELECT MAX(PNO) FROM SP
		             WHERE SP.ORIGIN = P.CITY)`

	for _, s := range []struct {
		name string
		opt  nestedsql.Strategy
	}{
		{"nested iteration (System R baseline)", nestedsql.StrategyNestedIteration},
		{"NEST-JA2 transformation (this paper)", nestedsql.StrategyTransform},
	} {
		res, err := db.Query(query, nestedsql.WithStrategy(s.opt))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", s.name)
		for _, row := range res.Rows {
			fmt.Printf("  %v\n", row[0])
		}
		fmt.Printf("  cost: %s\n\n", res.PageIO)
	}

	// Your own schema works the same way.
	if err := db.CreateTable("ORDERS", []nestedsql.Column{
		{Name: "ID", Type: nestedsql.Int},
		{Name: "SNO", Type: nestedsql.String},
		{Name: "PLACED", Type: nestedsql.Date},
	}, 0, "ID"); err != nil {
		log.Fatal(err)
	}
	if err := db.Insert("ORDERS",
		[]any{1, "S1", "3-1-86"},
		[]any{2, "S2", "5-20-86"},
		[]any{3, "S9", "6-2-86"}, // no such supplier
	); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`
		SELECT ID FROM ORDERS
		WHERE SNO IN (SELECT SNO FROM S WHERE STATUS >= 20)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("orders from high-status suppliers:")
	for _, row := range res.Rows {
		fmt.Printf("  order %v\n", row[0])
	}
}
