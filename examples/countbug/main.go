// Countbug walks through the paper's central counterexample end to end:
// Kiessling's query Q2 on his PARTS/SUPPLY instance, evaluated by nested
// iteration (correct), by Kim's NEST-JA (the COUNT bug: parts with zero
// qualifying shipments vanish), and by the paper's corrected NEST-JA2
// (outer join + COUNT over the inner column restores them).
package main

import (
	"fmt"
	"log"

	nestedsql "repro"
)

// Query Q2 of [KIE 84]: part numbers whose quantity on hand equals the
// number of shipments of that part before 1-1-80. Part 8 has QOH = 0 and
// no qualifying shipments, so it belongs in the answer — COUNT over an
// empty set is 0.
const q2 = `
	SELECT PNUM FROM PARTS
	WHERE QOH = (SELECT COUNT(SHIPDATE) FROM SUPPLY
	             WHERE SUPPLY.PNUM = PARTS.PNUM AND SHIPDATE < 1-1-80)`

func main() {
	db := nestedsql.Open(nestedsql.WithBufferPages(8))
	if err := db.LoadFixture(nestedsql.FixtureKiessling); err != nil {
		log.Fatal(err)
	}

	show(db, "nested iteration (ground truth, paper: {10, 8})",
		nestedsql.StrategyNestedIteration)
	show(db, "Kim's NEST-JA (the COUNT bug, paper: part 8 lost)",
		nestedsql.StrategyTransformKim)
	show(db, "NEST-JA2 (the paper's fix, paper: {10, 8})",
		nestedsql.StrategyTransform)

	// The transformation trace shows why the fix works: TEMP1 projects
	// the outer join column DISTINCT, TEMP2 restricts the inner relation
	// before the join, and TEMP3 outer-joins them (the =+ operator) so
	// unmatched groups survive with COUNT = 0.
	rep, err := db.Explain(q2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEXPLAIN of the corrected transformation:")
	fmt.Println(rep)
}

func show(db *nestedsql.DB, label string, s nestedsql.Strategy) {
	res, err := db.Query(q2, nestedsql.WithStrategy(s))
	if err != nil {
		log.Fatal(err)
	}
	parts := make([]any, 0, len(res.Rows))
	for _, row := range res.Rows {
		parts = append(parts, row[0])
	}
	fmt.Printf("%-55s -> %v\n", label, parts)
}
