// Costexplorer sweeps the size of the inner relation of a correlated
// aggregate query and reports measured page I/Os under nested iteration
// and under the NEST-JA2 transformation, locating the regime where the
// transformation's order-of-magnitude win appears (the inner relation
// outgrowing the buffer pool) — the phenomenon that motivated Kim's work
// and the paper.
package main

import (
	"fmt"
	"log"

	nestedsql "repro"
)

const bufferPages = 8

func main() {
	fmt.Printf("correlated COUNT query, buffer pool B = %d pages\n\n", bufferPages)
	fmt.Printf("%10s %10s %14s %14s %10s\n",
		"RI tuples", "RJ pages", "nested iter.", "NEST-JA2", "savings")

	for _, innerTuples := range []int{40, 100, 200, 400, 800, 1600} {
		ni := run(innerTuples, nestedsql.StrategyNestedIteration)
		tr := run(innerTuples, nestedsql.StrategyTransform)
		savings := 100 * (1 - float64(tr)/float64(ni))
		fmt.Printf("%10d %10d %14d %14d %9.1f%%\n",
			outerTuples, innerTuples/tuplesPerPage, ni, tr, savings)
	}
	fmt.Println("\nOnce RJ exceeds the buffer pool, nested iteration re-reads it per")
	fmt.Println("outer tuple (Pi + f(i)*Ni*Pj) while the transformed plan reads each")
	fmt.Println("relation a small, logarithmic number of times - the paper's claim.")
}

const (
	outerTuples   = 200
	tuplesPerPage = 5
)

// run builds a fresh database with RJ at the given size and returns the
// query's total page I/Os under the strategy.
func run(innerTuples int, s nestedsql.Strategy) int64 {
	db := nestedsql.Open(nestedsql.WithBufferPages(bufferPages))
	cols := []nestedsql.Column{
		{Name: "JC", Type: nestedsql.Int},
		{Name: "VAL", Type: nestedsql.Int},
	}
	if err := db.CreateTable("RI", cols, tuplesPerPage); err != nil {
		log.Fatal(err)
	}
	if err := db.CreateTable("RJ", cols, tuplesPerPage); err != nil {
		log.Fatal(err)
	}
	rows := make([][]any, 0, outerTuples)
	for k := range outerTuples {
		rows = append(rows, []any{k % 50, k % 4})
	}
	if err := db.Insert("RI", rows...); err != nil {
		log.Fatal(err)
	}
	rows = rows[:0]
	for k := range innerTuples {
		rows = append(rows, []any{(k * 13) % 50, k % 4})
	}
	if err := db.Insert("RJ", rows...); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(`
		SELECT JC FROM RI
		WHERE VAL = (SELECT COUNT(VAL) FROM RJ WHERE RJ.JC = RI.JC)`,
		nestedsql.WithStrategy(s))
	if err != nil {
		log.Fatal(err)
	}
	return res.PageIO.Total()
}
