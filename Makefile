# Developer entry points. `make check` is the full gate: vet, build,
# the whole test suite under the race detector (the parallel executor
# makes -race load-bearing, not optional), and a short run of the
# parser fuzz target. See README "Checks" for what each layer covers.

GO ?= go

.PHONY: check vet build test race fuzz chaos storm memstorm netchaos cluster cluster-failover crash serve-smoke metamorph bench

check: vet build race fuzz chaos storm memstorm netchaos cluster cluster-failover crash serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser
	$(GO) test -run '^$$' -fuzz FuzzDecodeFrame -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzFrameCorruption -fuzztime 10s ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 10s ./internal/wal

# The seeded fault-injection suite: the generated-query corpus executed
# against a fault-injecting store (read errors, latency, torn temp
# writes), asserting every fault becomes a clean typed error — never a
# panic, hang, goroutine leak, or leaked temp file. -count=1 defeats the
# test cache so the faults actually run.
chaos:
	$(GO) test -race -count=1 -v -run TestChaosFaultInjection ./internal/engine

# The multi-client chaos storm: 8 clients hammer one engine through the
# admission gateway with faults armed, then the engine drains to zero.
# Every query must end oracle-correct or with a typed error, the memory
# pool must never overcommit, and nothing may leak.
storm:
	$(GO) test -race -count=1 -v -run 'TestChaosStorm|TestDrainUnderFaults' ./internal/engine

# The memory-pressure storm: concurrent clients run the corpus under
# byte budgets far below their working sets, through the admission
# gateway (pressure-sized leases), with spill I/O faults armed. Queries
# must either complete — sequential plans byte-identical to the
# unbudgeted oracle — or fail typed; afterwards zero spill files, zero
# temp files, baseline goroutines. Bounded rounds, fixed seed. The
# companion tests pin the whole degradation ladder (budget kills the
# query without spill, completes with it; corrupt runs fail typed).
memstorm:
	$(GO) test -race -count=1 -v -run 'TestMemPressureStorm|TestSpillCompletesUnderSmallBudget|TestSequentialBudgetCharged|TestSpillForcedMatchesOracle|TestSpillCorruptRunDetected|TestSpillTimeoutLeakFree|TestMetamorphTightMemory' ./internal/engine ./internal/metamorph

# The kill -9 recovery storm: the durability suite, the in-process
# crash storm (engines abandoned mid-commit with WAL tears injected),
# and the full 16-round subprocess storm — a -race nestedsqld SIGKILLed
# mid-DML-burst over and over, each reboot byte-compared against an
# oracle holding exactly the acknowledged commits. Zero leaked WAL or
# snapshot files allowed.
crash:
	$(GO) test -race -count=1 -v -run 'TestDurability|TestCrashStorm|TestGoldenCorpus' ./internal/engine ./internal/wal
	$(GO) test -race -count=1 -v -run TestCrashStormKill9 ./cmd/nestedsqld

# The network chaos storm: clients hammer a live server through the
# seeded fault-injecting TCP proxy (internal/netfault) — delays, split
# writes, corruption, truncation, drops, partitions. Every completed
# result must be byte-identical to the in-process oracle; every failure
# typed; no goroutine, admission-slot, or pool-lease leaks afterwards.
netchaos:
	$(GO) test -race -count=1 -v -run TestNetChaosStorm ./internal/server

# The distributed gate: NEST-JA2 and the rest of the distributable mix
# on 3 sharded workers, byte-diffed (canonically sorted) against the
# single-node sequential oracle under both placements (co-located and
# shuffle-forcing), plus the multi-node chaos storm — every worker link
# behind a seeded fault proxy while a coordinator-fronted server takes
# outer clients. Completed results must equal the oracle; failures must
# be typed; workers must quiesce; no goroutine leaks.
cluster:
	$(GO) test -race -count=1 -v -run 'TestDistributedNestJA2|TestClusterChaosStorm' ./internal/cluster

# The failover gate: replicated shards surviving a dead node. The
# deterministic drill (proxy-killed worker: queries reroute, DML lands
# on the survivor, rejoin re-ships a snapshot), the fast typed
# ErrWorkerLost check, the replication-aware Analyze refusal table, and
# the SIGKILL storm — a -race worker killed and restarted empty under
# concurrent DML + queries, every acked row present exactly once after
# the fleet heals.
cluster-failover:
	$(GO) test -race -count=1 -v -run 'TestClusterFailover|TestWorkerLostFastFailure|TestClusterAnalyzeRefusals' ./internal/cluster

# End-to-end serving gate: boots nestedsqld on a random port, streams
# the paper workload through the Go client from 8 concurrent
# connections, diffs every result against the in-process sequential
# oracle, and SIGTERMs the server (idle and mid-run) expecting exit 0.
serve-smoke:
	./scripts/serve_smoke.sh

# The long metamorphic correctness pass: seeded random query pairs with
# provable set relations (internal/metamorph), executed through every
# regime — sequential, parallel, nested iteration, live network — with
# shrinking armed. Failures print a minimized repro script and land in
# $(METAMORPH_CORPUS) (default: $TMPDIR/metamorph-corpus). Override the
# budget and seed: `make metamorph ROUNDS=10000 SEED=42`. The short
# deterministic pass runs inside `make check`/`race` as TestMetamorphShort.
ROUNDS ?= 2000
SEED ?=
metamorph:
	METAMORPH_ROUNDS=$(ROUNDS) METAMORPH_SEED=$(SEED) \
		$(GO) test -race -count=1 -v -run TestMetamorphLong ./internal/metamorph

bench:
	$(GO) test -bench . -benchmem .
