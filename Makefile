# Developer entry points. `make check` is the full gate: vet, build,
# the whole test suite under the race detector (the parallel executor
# makes -race load-bearing, not optional), and a short run of the
# parser fuzz target. See README "Checks" for what each layer covers.

GO ?= go

.PHONY: check vet build test race fuzz chaos storm bench

check: vet build race fuzz chaos storm

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser

# The seeded fault-injection suite: the generated-query corpus executed
# against a fault-injecting store (read errors, latency, torn temp
# writes), asserting every fault becomes a clean typed error — never a
# panic, hang, goroutine leak, or leaked temp file. -count=1 defeats the
# test cache so the faults actually run.
chaos:
	$(GO) test -race -count=1 -v -run TestChaosFaultInjection ./internal/engine

# The multi-client chaos storm: 8 clients hammer one engine through the
# admission gateway with faults armed, then the engine drains to zero.
# Every query must end oracle-correct or with a typed error, the memory
# pool must never overcommit, and nothing may leak.
storm:
	$(GO) test -race -count=1 -v -run 'TestChaosStorm|TestDrainUnderFaults' ./internal/engine

bench:
	$(GO) test -bench . -benchmem .
