# Developer entry points. `make check` is the full gate: vet, build,
# the whole test suite under the race detector (the parallel executor
# makes -race load-bearing, not optional), and a short run of the
# parser fuzz target. See README "Checks" for what each layer covers.

GO ?= go

.PHONY: check vet build test race fuzz bench

check: vet build race fuzz

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseScript -fuzztime 10s ./internal/sqlparser

bench:
	$(GO) test -bench . -benchmem .
